package dpipe

import (
	"encoding/json"
	"sort"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// PlanContext reports the enumeration it performed through the progress
// hook: a nonzero examined count bounded by the budget, and the candidate
// tally matching the returned plan.
func TestPlanEmitsEnumerationProgress(t *testing.T) {
	p := mhaProblem(t, 8)
	opts := DefaultOptions()
	var events []obs.EnumerationProgress
	opts.Progress = func(ev obs.Event) {
		ep, ok := ev.(obs.EnumerationProgress)
		if !ok {
			t.Fatalf("unexpected event %T", ev)
		}
		events = append(events, ep)
	}
	plan, err := Plan(p, arch.Edge(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d enumeration events, want 1", len(events))
	}
	ev := events[0]
	if ev.Problem != p.Name {
		t.Fatalf("event problem = %q, want %q", ev.Problem, p.Name)
	}
	if ev.Examined <= 0 || ev.Examined > ev.Budget {
		t.Fatalf("examined = %d, budget = %d", ev.Examined, ev.Budget)
	}
	if ev.Bipartitions <= 0 {
		t.Fatalf("bipartitions = %d", ev.Bipartitions)
	}
	if ev.Candidates != plan.Candidates {
		t.Fatalf("event candidates = %d, plan reports %d", ev.Candidates, plan.Candidates)
	}
}

// Trace entries come out deterministically ordered: by start cycle, then op
// name, then epoch — so diffs, goldens, and exports are stable across runs.
func TestTraceEntriesDeterministicallyOrdered(t *testing.T) {
	p := mhaProblem(t, 8)
	spec := arch.Edge()
	plan, err := Plan(p, spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceSchedule(p, spec, plan.Order, plan.Bipartition.First, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(tr.Entries, func(i, j int) bool {
		a, b := tr.Entries[i], tr.Entries[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Epoch < b.Epoch
	}) {
		t.Fatalf("trace entries unordered: %+v", tr.Entries)
	}
	// Two builds of the same schedule must agree entry-for-entry.
	tr2, err := TraceSchedule(p, spec, plan.Order, plan.Bipartition.First, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != len(tr2.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(tr.Entries), len(tr2.Entries))
	}
	for i := range tr.Entries {
		if tr.Entries[i] != tr2.Entries[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, tr.Entries[i], tr2.Entries[i])
		}
	}
}

func TestChromeTraceEventsFromTrace(t *testing.T) {
	p := twoStageProblem(3)
	tr, err := TraceSchedule(p, arch.Cloud(), nil, nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	events := tr.ChromeTraceEvents(7)
	// Leading metadata: process name plus the two PE-array lanes.
	if len(events) != len(tr.Entries)+3 {
		t.Fatalf("events = %d, want %d", len(events), len(tr.Entries)+3)
	}
	if events[0].Phase != "M" || events[0].Name != "process_name" || events[0].Pid != 7 {
		t.Fatalf("process metadata malformed: %+v", events[0])
	}
	for _, ev := range events[3:] {
		if ev.Phase != "X" {
			t.Fatalf("schedule event phase = %q", ev.Phase)
		}
		if ev.Pid != 7 || (ev.Tid != tid2D && ev.Tid != tid1D) {
			t.Fatalf("event lane malformed: %+v", ev)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Fatalf("negative time: %+v", ev)
		}
		if _, ok := ev.Args["epoch"]; !ok {
			t.Fatalf("event missing epoch arg: %+v", ev)
		}
	}
	// The whole thing must round-trip through the JSON array format.
	data, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
}
