package cascade

import (
	"math"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

func TestFlattenHeadsLayout(t *testing.T) {
	x := tensor.New(tensor.Dim{Name: "h", Size: 2}, tensor.Dim{Name: "f", Size: 3}, tensor.Dim{Name: "p", Size: 1})
	for i := 0; i < 6; i++ {
		x.SetFlat(i, float64(i))
	}
	flat := flattenHeads(x)
	if flat.MustSize("d") != 6 {
		t.Fatalf("d = %d", flat.MustSize("d"))
	}
	// Head-major: d = h*F + f.
	for hi := 0; hi < 2; hi++ {
		for fi := 0; fi < 3; fi++ {
			want := x.At(map[string]int{"h": hi, "f": fi, "p": 0})
			got := flat.At(map[string]int{"d": hi*3 + fi, "p": 0})
			if got != want {
				t.Fatalf("flatten mismatch at h=%d f=%d", hi, fi)
			}
		}
	}
}

// flattenHeads must invert the (h, e) split RefProject/the cascades use, so
// stacking layers preserves semantics: projecting the flattened output must
// equal projecting with the heads still split.
func TestFlattenHeadsConsistentWithProjection(t *testing.T) {
	const d, h, e, p = 8, 2, 4, 3
	x := tensor.Rand(401, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "p", Size: p})
	w := RandLayerWeights(402, d, h, e, e, 16)
	q := RefProject(x, w.WQ, "e") // [h,e,p]
	flat := flattenHeads(renameDim(q.Clone(), "e", "f"))
	// Round trip: split d back into (h, e) and compare.
	for hi := 0; hi < h; hi++ {
		for ei := 0; ei < e; ei++ {
			for pi := 0; pi < p; pi++ {
				a := q.At(map[string]int{"h": hi, "e": ei, "p": pi})
				b := flat.At(map[string]int{"d": hi*e + ei, "p": pi})
				if a != b {
					t.Fatalf("flatten breaks head split at h=%d e=%d", hi, ei)
				}
			}
		}
	}
}

func TestStackHeads(t *testing.T) {
	cases := map[int][2]int{8: {8, 1}, 12: {4, 3}, 6: {2, 3}, 7: {1, 7}}
	for d, want := range cases {
		h, e := stackHeads(d)
		if h != want[0] || e != want[1] {
			t.Errorf("stackHeads(%d) = (%d,%d), want %v", d, h, e, want)
		}
		if h*e != d {
			t.Errorf("stackHeads(%d) does not partition d", d)
		}
	}
}

func TestRunEncoderStack(t *testing.T) {
	const d, p, m0 = 8, 6, 2
	input := tensor.Rand(501, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "p", Size: p})
	out, err := RunEncoderStack(input, 7, 3, m0, "gelu")
	if err != nil {
		t.Fatal(err)
	}
	if out.MustSize("d") != d || out.MustSize("p") != p {
		t.Fatalf("stack output shape %v", out.DimNames())
	}
	finiteCheck(t, out)
	// Deterministic.
	out2, err := RunEncoderStack(input, 7, 3, m0, "gelu")
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(out, out2) != 0 {
		t.Fatal("encoder stack nondeterministic")
	}
	// Different seeds differ.
	out3, err := RunEncoderStack(input, 8, 3, m0, "gelu")
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(out, out3) == 0 {
		t.Fatal("different weight seeds produced identical stacks")
	}
	if _, err := RunEncoderStack(input, 7, 0, m0, "gelu"); err == nil {
		t.Fatal("zero layers accepted")
	}
}

func finiteCheck(t *testing.T, x *tensor.Tensor) {
	t.Helper()
	x.Each(func(_ map[string]int, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value %v", v)
		}
	})
}

// The decoder layer must match a reference composition of masked
// self-attention, cross-attention, LayerNorms, and FFN.
func TestRunDecoderLayerMatchesReference(t *testing.T) {
	const d, h, e, p, mem, s, m0 = 8, 2, 4, 4, 6, 10, 2
	f := e
	x := tensor.Rand(601, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "p", Size: p})
	memory := tensor.Rand(602, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "p", Size: mem})
	w := RandDecoderWeights(603, d, h, e, f, s)

	got, err := RunDecoderLayer(x, memory, w, m0, "relu")
	if err != nil {
		t.Fatal(err)
	}

	// Reference composition.
	q := RefProject(x, w.Self.WQ, "e")
	k := renameDim(RefProject(x, w.Self.WK, "e"), "p", "m")
	v := renameDim(RefProject(x, w.Self.WV, "f"), "p", "m")
	av := RefCausalAttention(q, k, v, 0)
	selfOut := RefAddLayerNorm(renameDim(q.Clone(), "e", "f"), av)

	flatSelf := flattenHeads(selfOut)
	cq := RefProject(flatSelf, w.CrossQ, "e")
	ck := renameDim(RefProject(memory, w.CrossK, "e"), "p", "m")
	cv := renameDim(RefProject(memory, w.CrossV, "f"), "p", "m")
	cav := RefAttention(cq, ck, cv)
	crossOut := RefAddLayerNorm(selfOut, cav)

	relu := einsum.ActivationByName("relu")
	want := RefFFN(crossOut, w.Self.WF1, w.Self.BF1, w.Self.WF2, w.Self.BF2,
		func(x float64) float64 { return relu([]float64{x}) })

	if dd := tensor.MaxAbsDiff(got, want); dd > 1e-8 {
		t.Fatalf("decoder layer deviates from reference by %v", dd)
	}
}

func TestRunDecoderLayerErrors(t *testing.T) {
	const d = 8
	x := tensor.Rand(1, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "p", Size: 4})
	memory := tensor.Rand(2, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "p", Size: 6})
	w := RandDecoderWeights(3, d, 2, 4, 4, 10)
	// m0 must divide both lengths.
	if _, err := RunDecoderLayer(x, memory, w, 4, "relu"); err == nil {
		t.Fatal("m0 not dividing memory accepted")
	}
	if _, err := RunDecoderLayer(x, memory, w, 0, "relu"); err == nil {
		t.Fatal("m0 = 0 accepted")
	}
}
