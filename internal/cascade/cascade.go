// Package cascade implements Cascades of Einsums — ordered sequences of
// Extended Einsums with optional cross-tile recurrences — and provides the
// four Transformer cascades from the paper:
//
//	Einsum Cascade 1: 1-pass streaming attention (Eqs. 12–24)
//	Einsum Cascade 2: tiled QKV projections      (Eqs. 25–27)
//	Einsum Cascade 3: Add & LayerNorm            (Eqs. 28–36)
//	Einsum Cascade 4: Feed-Forward Network       (Eqs. 37–39)
//
// A cascade is both executable (via the internal/eval interpreter, for
// functional validation) and analyzable (its Body is the operation-level DAG
// that DPipe partitions and schedules, and its Einsums carry the Eq. 40
// compute loads the performance model consumes).
package cascade

import (
	"fmt"
	"math"

	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/eval"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

// StateVar is a tensor carried across loop iterations (the streaming-softmax
// running max, running denominator, and running numerator-times-V in Cascade
// 1). Within an iteration the *previous* value is visible under Name and the
// updated value must be produced by an Einsum named Name+"_next"; the
// executor swaps them at the end of each iteration.
type StateVar struct {
	Name string
	// Idx are the dimension labels of the state tensor (sizes come from the
	// execution environment).
	Idx []string
	// Init is the initial fill value (e.g. -Inf for a running max).
	Init float64
}

// NextName returns the name of the Einsum that produces this state's update.
func (s StateVar) NextName() string { return s.Name + "_next" }

// Cascade is an ordered sequence of Einsums, optionally wrapped in a
// recurrence loop over LoopIndex.
type Cascade struct {
	Name string
	// LoopIndex, when non-empty, names the outer tile index (m1 in Cascade
	// 1). Inputs carrying this dimension are sliced per iteration; state
	// variables carry values across iterations.
	LoopIndex string
	// Body is executed once per loop iteration (or exactly once if
	// LoopIndex is empty).
	Body []*einsum.Einsum
	// Final is executed after the loop completes (e.g. AV = RNV / RD).
	Final []*einsum.Einsum
	// State lists the recurrent tensors.
	State []StateVar
	// Inputs names the externally supplied tensors.
	Inputs []string
	// Outputs names the tensors the cascade produces for downstream layers.
	Outputs []string
}

// All returns Body followed by Final.
func (c *Cascade) All() []*einsum.Einsum {
	out := make([]*einsum.Einsum, 0, len(c.Body)+len(c.Final))
	out = append(out, c.Body...)
	return append(out, c.Final...)
}

// Find returns the Einsum producing the named tensor, or nil.
func (c *Cascade) Find(name string) *einsum.Einsum {
	for _, e := range c.All() {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// Validate checks that the cascade is internally consistent under the given
// dimension sizes: every Einsum validates, every Einsum input is an external
// input, a state variable, or a previously produced tensor, and every state
// variable has an update Einsum in the body.
func (c *Cascade) Validate(dims map[string]int) error {
	available := make(map[string]bool)
	for _, in := range c.Inputs {
		available[in] = true
	}
	for _, s := range c.State {
		available[s.Name] = true
	}
	produced := make(map[string]bool)
	for _, e := range c.All() {
		if err := e.Validate(dims); err != nil {
			return fmt.Errorf("cascade %s: %w", c.Name, err)
		}
		if produced[e.Name] {
			return fmt.Errorf("cascade %s: tensor %q produced twice", c.Name, e.Name)
		}
		for _, in := range e.InputTensors() {
			if !available[in] {
				return fmt.Errorf("cascade %s: einsum %s reads %q before it is produced", c.Name, e.Name, in)
			}
		}
		available[e.Name] = true
		produced[e.Name] = true
	}
	for _, s := range c.State {
		if !produced[s.NextName()] {
			return fmt.Errorf("cascade %s: state %q has no update einsum %q", c.Name, s.Name, s.NextName())
		}
	}
	for _, out := range c.Outputs {
		if !available[out] {
			return fmt.Errorf("cascade %s: declared output %q never produced", c.Name, out)
		}
	}
	if c.LoopIndex == "" && len(c.State) > 0 {
		return fmt.Errorf("cascade %s: state variables without a loop index", c.Name)
	}
	return nil
}

// Run executes the cascade on env and returns a new environment containing
// env plus every tensor the cascade produced (final state values included).
// dims must give the extent of every index label, including LoopIndex.
func (c *Cascade) Run(env eval.Env, dims map[string]int) (eval.Env, error) {
	if err := c.Validate(dims); err != nil {
		return nil, err
	}
	out := make(eval.Env, len(env)+len(c.Body)+len(c.Final))
	for k, v := range env {
		out[k] = v
	}
	for _, in := range c.Inputs {
		if _, ok := out[in]; !ok {
			return nil, fmt.Errorf("cascade %s: input tensor %q not supplied", c.Name, in)
		}
	}

	if c.LoopIndex == "" {
		for _, e := range c.Body {
			t, err := eval.ApplyFast(e, out, dims)
			if err != nil {
				return nil, err
			}
			out[e.Name] = t
		}
	} else {
		iters, ok := dims[c.LoopIndex]
		if !ok {
			return nil, fmt.Errorf("cascade %s: loop index %q has no size", c.Name, c.LoopIndex)
		}
		// Initialise state.
		for _, s := range c.State {
			sdims := make([]tensor.Dim, len(s.Idx))
			for i, idx := range s.Idx {
				size, ok := dims[idx]
				if !ok {
					return nil, fmt.Errorf("cascade %s: state %s: index %q has no size", c.Name, s.Name, idx)
				}
				sdims[i] = tensor.Dim{Name: idx, Size: size}
			}
			out[s.Name] = tensor.New(sdims...).Fill(s.Init)
		}
		// Loop-sliced dimension sizes: within an iteration the loop index is
		// fixed, so body Einsums are written without it.
		bodyDims := make(map[string]int, len(dims))
		for k, v := range dims {
			if k != c.LoopIndex {
				bodyDims[k] = v
			}
		}
		for t := 0; t < iters; t++ {
			iterEnv := make(eval.Env, len(out))
			for name, tt := range out {
				if tt.HasDim(c.LoopIndex) {
					iterEnv[name] = tt.Slice(c.LoopIndex, t)
				} else {
					iterEnv[name] = tt
				}
			}
			for _, e := range c.Body {
				res, err := eval.ApplyFast(e, iterEnv, bodyDims)
				if err != nil {
					return nil, fmt.Errorf("cascade %s: iteration %d: %w", c.Name, t, err)
				}
				iterEnv[e.Name] = res
			}
			// Commit state updates.
			for _, s := range c.State {
				out[s.Name] = iterEnv[s.NextName()]
			}
		}
		// Expose final state to the Final einsums under the state names.
	}

	for _, e := range c.Final {
		t, err := eval.ApplyFast(e, out, dims)
		if err != nil {
			return nil, err
		}
		out[e.Name] = t
	}
	return out, nil
}

// negInf is the running-max initialiser.
var negInf = math.Inf(-1)
