package cascade

import (
	"github.com/fusedmindlab/transfusion/internal/einsum"
)

// NaiveAttention builds the conventional full-materialisation attention
// dataflow used by the Unfused and FLAT baselines: compute the complete
// score matrix, a two-pass numerically stable softmax over it, and the
// weighted sum with V. Unlike Einsum Cascade 1 there is no streaming
// recurrence — the key/value sequence is addressed with a single index m0
// of full extent, so the score and softmax tensors are materialised whole
// (which is exactly why the Unfused baseline drowns in DRAM traffic at long
// sequence lengths).
//
// Inputs: Q[h,e,p], BK[h,e,m0], BV[h,f,m0]. Output: AV[h,f,p].
func NaiveAttention() *Cascade {
	return &Cascade{
		Name: "MHA",
		Body: []*einsum.Einsum{
			einsum.New("SC", []string{"m0", "h", "p"},
				einsum.In("Q", "h", "e", "p"), einsum.In("BK", "h", "e", "m0")),
			einsum.Reduction("LMX", []string{"h", "p"}, einsum.ReduceMax,
				einsum.In("SC", "m0", "h", "p")),
			einsum.Map("EXPS", []string{"m0", "h", "p"}, einsum.ExpSub,
				einsum.In("SC", "m0", "h", "p"), einsum.In("LMX", "h", "p")),
			einsum.Reduction("DEN", []string{"h", "p"}, einsum.ReduceSum,
				einsum.In("EXPS", "m0", "h", "p")),
			einsum.Map("ATT", []string{"m0", "h", "p"}, einsum.Div2,
				einsum.In("EXPS", "m0", "h", "p"), einsum.In("DEN", "h", "p")),
			einsum.New("AV", []string{"h", "f", "p"},
				einsum.In("ATT", "m0", "h", "p"), einsum.In("BV", "h", "f", "m0")),
		},
		Inputs:  []string{"Q", "BK", "BV"},
		Outputs: []string{"AV"},
	}
}
