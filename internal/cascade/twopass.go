package cascade

import (
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/eval"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

// Two-pass attention, the FlashAttention-1-era dataflow that FuseMax's
// 1-pass cascade (Einsum Cascade 1) improves upon. Pass one streams the
// key blocks to compute the global softmax statistics (running max and
// denominator); pass two re-computes the scores and accumulates the
// numerator-times-V against the *final* statistics, so no correction
// rescaling is needed — at the price of computing the Q·K products twice.
//
// The pair of cascades exists for the attention-passes ablation: it lets
// the scheduler quantify what the 1-pass formulation buys (the paper's
// FuseMax lineage) under identical machinery.

// TwoPassStats is pass one: it consumes Q and the blocked keys and leaves
// the final running max (RM) and denominator (RD) in its output
// environment. Inputs: Q[h,e,p], BK[h,e,m1,m0].
func TwoPassStats() *Cascade {
	return &Cascade{
		Name:      "MHA",
		LoopIndex: "m1",
		Body: []*einsum.Einsum{
			einsum.New("BQK", []string{"m0", "h", "p"},
				einsum.In("Q", "h", "e", "p"), einsum.In("BK", "h", "e", "m0")),
			einsum.Reduction("LM", []string{"h", "p"}, einsum.ReduceMax,
				einsum.In("BQK", "m0", "h", "p")),
			einsum.Map("RM_next", []string{"h", "p"}, einsum.Max2,
				einsum.In("RM", "h", "p"), einsum.In("LM", "h", "p")),
			einsum.Map("SLN", []string{"m0", "h", "p"}, einsum.ExpSub,
				einsum.In("BQK", "m0", "h", "p"), einsum.In("RM_next", "h", "p")),
			einsum.Reduction("SLD", []string{"h", "p"}, einsum.ReduceSum,
				einsum.In("SLN", "m0", "h", "p")),
			einsum.Map("PRM", []string{"h", "p"}, einsum.ExpSub,
				einsum.In("RM", "h", "p"), einsum.In("RM_next", "h", "p")),
			einsum.Map("SPD", []string{"h", "p"}, einsum.Mul2,
				einsum.In("RD", "h", "p"), einsum.In("PRM", "h", "p")),
			einsum.Map("RD_next", []string{"h", "p"}, einsum.Add2,
				einsum.In("SLD", "h", "p"), einsum.In("SPD", "h", "p")),
		},
		State: []StateVar{
			{Name: "RM", Idx: []string{"h", "p"}, Init: negInf},
			{Name: "RD", Idx: []string{"h", "p"}, Init: 0},
		},
		Inputs:  []string{"Q", "BK"},
		Outputs: []string{},
	}
}

// TwoPassWeighted is pass two: with the final statistics fixed, it streams
// the key/value blocks once more, computing exp(QK - RM)/RD weighted by V.
// Inputs: Q[h,e,p], BK[h,e,m1,m0], BV[h,f,m1,m0], RM[h,p], RD[h,p].
// Output: AV[h,f,p].
func TwoPassWeighted() *Cascade {
	return &Cascade{
		Name:      "MHA",
		LoopIndex: "m1",
		Body: []*einsum.Einsum{
			einsum.New("BQK2", []string{"m0", "h", "p"},
				einsum.In("Q", "h", "e", "p"), einsum.In("BK", "h", "e", "m0")),
			einsum.Map("SLN2", []string{"m0", "h", "p"}, einsum.ExpSub,
				einsum.In("BQK2", "m0", "h", "p"), einsum.In("RM", "h", "p")),
			einsum.New("SLNV2", []string{"h", "f", "p"},
				einsum.In("SLN2", "m0", "h", "p"), einsum.In("BV", "h", "f", "m0")),
			einsum.Map("RNV_next", []string{"h", "f", "p"}, einsum.Add2,
				einsum.In("RNV", "h", "f", "p"), einsum.In("SLNV2", "h", "f", "p")),
		},
		Final: []*einsum.Einsum{
			einsum.Map("AV", []string{"h", "f", "p"}, einsum.Div2,
				einsum.In("RNV", "h", "f", "p"), einsum.In("RD", "h", "p")),
		},
		State: []StateVar{
			{Name: "RNV", Idx: []string{"h", "f", "p"}, Init: 0},
		},
		Inputs:  []string{"Q", "BK", "BV", "RM", "RD"},
		Outputs: []string{"AV"},
	}
}

// RunTwoPassAttention chains the two passes on the interpreter: pass one's
// final RM/RD state feeds pass two. Inputs follow Attention's layout
// (blocked BK[h,e,m1,m0], BV[h,f,m1,m0]).
func RunTwoPassAttention(env eval.Env, dims map[string]int) (*tensor.Tensor, error) {
	statsEnv, err := TwoPassStats().Run(env, dims)
	if err != nil {
		return nil, fmt.Errorf("two-pass attention: pass one: %w", err)
	}
	pass2 := eval.Env{
		"Q": env["Q"], "BK": env["BK"], "BV": env["BV"],
		"RM": statsEnv["RM"], "RD": statsEnv["RD"],
	}
	out, err := TwoPassWeighted().Run(pass2, dims)
	if err != nil {
		return nil, fmt.Errorf("two-pass attention: pass two: %w", err)
	}
	return out["AV"], nil
}
