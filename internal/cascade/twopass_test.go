package cascade

import (
	"testing"
	"testing/quick"

	"github.com/fusedmindlab/transfusion/internal/tensor"
)

func TestTwoPassMatchesReference(t *testing.T) {
	h, e, f, p, m1, m0 := 2, 4, 4, 3, 4, 2
	env := randQKV(311, h, e, f, p, m1, m0)
	got, err := RunTwoPassAttention(env, attentionDims(h, e, f, p, m1, m0))
	if err != nil {
		t.Fatal(err)
	}
	want := RefAttention(env["Q"], mergeKV(env["BK"]), mergeKV(env["BV"]))
	if d := tensor.MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("two-pass attention deviates by %v", d)
	}
}

func TestTwoPassAgreesWithOnePass(t *testing.T) {
	h, e, f, p, m1, m0 := 2, 3, 3, 4, 3, 2
	env := randQKV(313, h, e, f, p, m1, m0)
	dims := attentionDims(h, e, f, p, m1, m0)
	two, err := RunTwoPassAttention(env, dims)
	if err != nil {
		t.Fatal(err)
	}
	oneEnv, err := Attention().Run(env, dims)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(two, oneEnv["AV"]); d > 1e-9 {
		t.Fatalf("two-pass and one-pass disagree by %v", d)
	}
}

func TestTwoPassCascadesValidate(t *testing.T) {
	dims := attentionDims(2, 3, 3, 4, 2, 5)
	if err := TwoPassStats().Validate(dims); err != nil {
		t.Fatal(err)
	}
	if err := TwoPassWeighted().Validate(dims); err != nil {
		t.Fatal(err)
	}
	// The point of the comparison: pass two recomputes BQK, so the total
	// contraction count across both passes exceeds the 1-pass cascade's.
	contractions := 0
	for _, e := range append(TwoPassStats().All(), TwoPassWeighted().All()...) {
		if e.Class().String() == "contraction" {
			contractions++
		}
	}
	if contractions != 3 { // BQK, BQK2, SLNV2 — vs the 1-pass cascade's 2
		t.Fatalf("two-pass contractions = %d, want 3", contractions)
	}
}

// Property: two-pass equals one-pass for any (m1, m0) split.
func TestQuickTwoPassTileInvariance(t *testing.T) {
	f := func(seed uint64, m0raw uint8) bool {
		const h, e, fv, p, m = 1, 3, 3, 2, 12
		splits := []int{1, 2, 3, 4, 6, 12}
		m0 := splits[int(m0raw)%len(splits)]
		m1 := m / m0
		env := randQKV(seed|1, h, e, fv, p, m1, m0)
		dims := attentionDims(h, e, fv, p, m1, m0)
		two, err := RunTwoPassAttention(env, dims)
		if err != nil {
			return false
		}
		one, err := Attention().Run(env, dims)
		if err != nil {
			return false
		}
		return tensor.MaxAbsDiff(two, one["AV"]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPassMissingInput(t *testing.T) {
	if _, err := RunTwoPassAttention(nil, attentionDims(1, 2, 2, 1, 2, 2)); err == nil {
		t.Fatal("two-pass with no inputs succeeded")
	}
}
