package cascade

import (
	"math"

	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

// Causal (decoder-style masked) attention. The paper's evaluation uses the
// bidirectional formulation throughout; this file provides the masked
// variant as the natural extension for decoder stacks (§3.2 notes that
// TransFusion composes encoder, decoder, and hybrid configurations from the
// same shape-consistent cascades).
//
// The streaming cascade is extended with a single additive mask Einsum
// between the block dot product and the local max: the mask tensor carries
// 0 for visible positions and -inf for future positions, and — crucially —
// it is indexed by (m1, m0, p), so the executor's per-m1 slicing delivers
// exactly the mask block each iteration needs. All other Einsums are
// unchanged, and the running-max recurrence keeps the masked softmax
// numerically stable: fully masked blocks contribute exp(-inf) = 0.

// maskedRMInit is the running-max initialiser for the masked cascade. It
// must be finite: when an entire key/value block is masked, the local max
// is -inf, and a -inf running max would make the shifted exponential
// exp(-inf - (-inf)) = NaN. With a very negative finite initial value the
// fully-masked block contributes exp(-inf - maskedRMInit) = 0 and the
// correction factor exp(maskedRMInit - maskedRMInit) = 1, which is exactly
// the "no mass yet" semantics.
const maskedRMInit = -1e30

// CausalAttention builds the masked variant of Einsum Cascade 1.
// Inputs: Q[h,e,p], BK[h,e,m1,m0], BV[h,f,m1,m0], MASK[m1,m0,p].
// Output: AV[h,f,p].
func CausalAttention() *Cascade {
	base := Attention()
	state := append([]StateVar(nil), base.State...)
	for i := range state {
		if state[i].Name == "RM" {
			state[i].Init = maskedRMInit
		}
	}
	masked := &Cascade{
		Name:      base.Name,
		LoopIndex: base.LoopIndex,
		State:     state,
		Inputs:    append(append([]string{}, base.Inputs...), "MASK"),
		Outputs:   base.Outputs,
		Final:     base.Final,
	}
	for _, e := range base.Body {
		switch e.Name {
		case "BQK":
			masked.Body = append(masked.Body, e,
				// MQK = BQK + MASK: -inf on future positions.
				einsum.Map("MQK", []string{"m0", "h", "p"}, einsum.Add2,
					einsum.In("BQK", "m0", "h", "p"), einsum.In("MASK", "m0", "p")))
		case "LM":
			masked.Body = append(masked.Body,
				einsum.Reduction("LM", []string{"h", "p"}, einsum.ReduceMax,
					einsum.In("MQK", "m0", "h", "p")))
		case "SLN":
			masked.Body = append(masked.Body,
				einsum.Map("SLN", []string{"m0", "h", "p"}, einsum.ExpSub,
					einsum.In("MQK", "m0", "h", "p"), einsum.In("RM_next", "h", "p")))
		default:
			masked.Body = append(masked.Body, e)
		}
	}
	return masked
}

// CausalMask builds the additive mask for a query tile starting at global
// position qStart: MASK[m1,m0,p] is 0 where key position m1*m0Len + m0 <=
// qStart + p and -inf otherwise (each query attends to itself and earlier
// positions).
func CausalMask(m1Len, m0Len, pLen, qStart int) *tensor.Tensor {
	t := tensor.New(
		tensor.Dim{Name: "m1", Size: m1Len},
		tensor.Dim{Name: "m0", Size: m0Len},
		tensor.Dim{Name: "p", Size: pLen},
	)
	negInf := math.Inf(-1)
	t.Each(func(coord map[string]int, _ float64) {
		key := coord["m1"]*m0Len + coord["m0"]
		query := qStart + coord["p"]
		if key > query {
			t.Set(coord, negInf)
		}
	})
	return t
}

// RefCausalAttention is the naive masked reference: softmax over only the
// visible (key <= query) positions. Q is [h,e,p] with queries at global
// positions qStart..qStart+p-1; K is [h,e,m], V is [h,f,m].
func RefCausalAttention(q, k, v *tensor.Tensor, qStart int) *tensor.Tensor {
	h := q.MustSize("h")
	e := q.MustSize("e")
	p := q.MustSize("p")
	m := k.MustSize("m")
	f := v.MustSize("f")
	out := tensor.New(tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}, tensor.Dim{Name: "p", Size: p})
	scores := make([]float64, m)
	for hi := 0; hi < h; hi++ {
		for pi := 0; pi < p; pi++ {
			limit := qStart + pi // inclusive visibility bound
			maxScore := math.Inf(-1)
			for mi := 0; mi <= limit && mi < m; mi++ {
				s := 0.0
				for ei := 0; ei < e; ei++ {
					s += q.At(map[string]int{"h": hi, "e": ei, "p": pi}) *
						k.At(map[string]int{"h": hi, "e": ei, "m": mi})
				}
				scores[mi] = s
				if s > maxScore {
					maxScore = s
				}
			}
			den := 0.0
			for mi := 0; mi <= limit && mi < m; mi++ {
				scores[mi] = math.Exp(scores[mi] - maxScore)
				den += scores[mi]
			}
			for fi := 0; fi < f; fi++ {
				num := 0.0
				for mi := 0; mi <= limit && mi < m; mi++ {
					num += scores[mi] * v.At(map[string]int{"h": hi, "f": fi, "m": mi})
				}
				out.Set(map[string]int{"h": hi, "f": fi, "p": pi}, num/den)
			}
		}
	}
	return out
}
