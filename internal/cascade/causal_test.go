package cascade

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fusedmindlab/transfusion/internal/eval"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

func runCausal(t *testing.T, seed uint64, h, e, f, p, m1, m0, qStart int) (*tensor.Tensor, eval.Env) {
	t.Helper()
	env := randQKV(seed, h, e, f, p, m1, m0)
	env["MASK"] = CausalMask(m1, m0, p, qStart)
	out, err := CausalAttention().Run(env, attentionDims(h, e, f, p, m1, m0))
	if err != nil {
		t.Fatal(err)
	}
	return out["AV"], env
}

func TestCausalAttentionMatchesReference(t *testing.T) {
	h, e, f, p, m1, m0 := 2, 4, 4, 3, 4, 2
	// Queries at global positions 2..4 over an 8-long key sequence.
	got, env := runCausal(t, 91, h, e, f, p, m1, m0, 2)
	want := RefCausalAttention(env["Q"], mergeKV(env["BK"]), mergeKV(env["BV"]), 2)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("causal streaming deviates by %v", d)
	}
}

func TestCausalFullyMaskedFirstBlocks(t *testing.T) {
	// qStart = 6 with 8 keys: the first three 2-wide blocks are fully
	// visible only late; in particular for query p=0 blocks beyond key 6
	// are masked and the FIRST block is visible. Also exercise qStart=0,
	// where for p=0 only key 0 is visible and blocks 2..4 are fully masked
	// — the NaN trap if the running max were -inf.
	h, e, f, p, m1, m0 := 1, 3, 3, 2, 4, 2
	for _, qStart := range []int{0, 3, 6} {
		got, env := runCausal(t, uint64(100+qStart), h, e, f, p, m1, m0, qStart)
		got.Each(func(_ map[string]int, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("qStart=%d produced %v", qStart, v)
			}
		})
		want := RefCausalAttention(env["Q"], mergeKV(env["BK"]), mergeKV(env["BV"]), qStart)
		if d := tensor.MaxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("qStart=%d deviates by %v", qStart, d)
		}
	}
}

func TestCausalMaskShape(t *testing.T) {
	m := CausalMask(3, 2, 4, 1)
	// Key 0 visible to every query (query positions 1..4).
	for pi := 0; pi < 4; pi++ {
		if v := m.At(map[string]int{"m1": 0, "m0": 0, "p": pi}); v != 0 {
			t.Fatalf("key 0 masked for query %d: %v", pi, v)
		}
	}
	// Key 5 (m1=2,m0=1) only visible to queries at global position >= 5,
	// i.e. p=4... but p max is 3 (global 4), so it is masked everywhere.
	for pi := 0; pi < 4; pi++ {
		if v := m.At(map[string]int{"m1": 2, "m0": 1, "p": pi}); !math.IsInf(v, -1) {
			t.Fatalf("future key visible to query %d: %v", pi, v)
		}
	}
	// Diagonal: key 3 (m1=1,m0=1) visible exactly from query global pos 3
	// (p=2) onward.
	if v := m.At(map[string]int{"m1": 1, "m0": 1, "p": 1}); !math.IsInf(v, -1) {
		t.Fatal("key 3 visible too early")
	}
	if v := m.At(map[string]int{"m1": 1, "m0": 1, "p": 2}); v != 0 {
		t.Fatal("key 3 masked at its diagonal")
	}
}

func TestCausalCascadeValidates(t *testing.T) {
	c := CausalAttention()
	if err := c.Validate(attentionDims(2, 3, 3, 4, 2, 5)); err != nil {
		t.Fatal(err)
	}
	// One extra Einsum (the mask addition) over the base cascade's 12.
	if got := len(c.All()); got != 13 {
		t.Fatalf("causal cascade has %d einsums, want 13", got)
	}
	// The base cascade must be untouched by the derivation.
	if base := Attention(); len(base.All()) != 12 || len(base.Inputs) != 3 {
		t.Fatal("CausalAttention mutated the base Attention cascade")
	}
}

// Property: causal attention at qStart = m-p with full visibility of all
// previous keys equals bidirectional attention when every key is visible
// (mask all-zero), for any tile split.
func TestQuickCausalDegeneratesToBidirectional(t *testing.T) {
	f := func(seed uint64, m0raw uint8) bool {
		const h, e, fv, p, m = 2, 3, 3, 2, 12
		splits := []int{1, 2, 3, 4, 6, 12}
		m0 := splits[int(m0raw)%len(splits)]
		m1 := m / m0
		env := randQKV(seed|1, h, e, fv, p, m1, m0)
		// qStart such that even the last key is visible to the first query.
		mask := CausalMask(m1, m0, p, m-1)
		env["MASK"] = mask
		out, err := CausalAttention().Run(env, attentionDims(h, e, fv, p, m1, m0))
		if err != nil {
			return false
		}
		want := RefAttention(env["Q"], mergeKV(env["BK"]), mergeKV(env["BV"]))
		return tensor.MaxAbsDiff(out["AV"], want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the causal result is invariant to the (m1, m0) split.
func TestQuickCausalTileInvariance(t *testing.T) {
	f := func(seed uint64, m0raw, qRaw uint8) bool {
		const h, e, fv, p, m = 1, 3, 3, 3, 12
		splits := []int{1, 2, 3, 4, 6, 12}
		m0 := splits[int(m0raw)%len(splits)]
		m1 := m / m0
		qStart := int(qRaw) % (m - p + 1)
		k := tensor.Rand(seed+2, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}, tensor.Dim{Name: "m", Size: m})
		v := tensor.Rand(seed+3, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: fv}, tensor.Dim{Name: "m", Size: m})
		q := tensor.Rand(seed+1, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}, tensor.Dim{Name: "p", Size: p})
		env := eval.Env{
			"Q": q, "BK": k.SplitDim("m", "m1", "m0", m0), "BV": v.SplitDim("m", "m1", "m0", m0),
			"MASK": CausalMask(m1, m0, p, qStart),
		}
		out, err := CausalAttention().Run(env, attentionDims(h, e, fv, p, m1, m0))
		if err != nil {
			return false
		}
		want := RefCausalAttention(q, k, v, qStart)
		return tensor.MaxAbsDiff(out["AV"], want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
