package cascade

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/eval"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

func attentionDims(h, e, f, p, m1, m0 int) map[string]int {
	return map[string]int{"h": h, "e": e, "f": f, "p": p, "m1": m1, "m0": m0}
}

func randQKV(seed uint64, h, e, f, p, m1, m0 int) eval.Env {
	return eval.Env{
		"Q": tensor.Rand(seed+1, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}, tensor.Dim{Name: "p", Size: p}),
		"BK": tensor.Rand(seed+2, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e},
			tensor.Dim{Name: "m1", Size: m1}, tensor.Dim{Name: "m0", Size: m0}),
		"BV": tensor.Rand(seed+3, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f},
			tensor.Dim{Name: "m1", Size: m1}, tensor.Dim{Name: "m0", Size: m0}),
	}
}

// mergeKV converts blocked BK[h,e,m1,m0] back to flat K[h,e,m] for the
// reference implementation.
func mergeKV(t *tensor.Tensor) *tensor.Tensor {
	return t.MergeDims("m1", "m0", "m")
}

func TestAttentionCascadeValidates(t *testing.T) {
	c := Attention()
	if err := c.Validate(attentionDims(2, 3, 3, 4, 2, 5)); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Body) + len(c.Final); got != 12 {
		t.Fatalf("attention cascade has %d einsums, want 12 (the paper's primitive-operator count)", got)
	}
}

// The headline functional test: the streaming 1-pass attention cascade
// (Einsum Cascade 1) must compute exactly the same function as naive
// full-softmax attention.
func TestAttentionMatchesReference(t *testing.T) {
	h, e, f, p, m1, m0 := 2, 4, 4, 3, 4, 2
	env := randQKV(42, h, e, f, p, m1, m0)
	out, err := Attention().Run(env, attentionDims(h, e, f, p, m1, m0))
	if err != nil {
		t.Fatal(err)
	}
	want := RefAttention(env["Q"], mergeKV(env["BK"]), mergeKV(env["BV"]))
	if d := tensor.MaxAbsDiff(out["AV"], want); d > 1e-9 {
		t.Fatalf("streaming attention deviates from reference by %v", d)
	}
}

// Property: the result is independent of how the key/value sequence is split
// into (m1, m0) tiles — the tile-size invariance that makes outer-tiling a
// pure performance decision.
func TestQuickAttentionTileInvariance(t *testing.T) {
	f := func(seed uint64, m0raw uint8) bool {
		const h, e, fv, p, m = 2, 3, 3, 2, 12
		splits := []int{1, 2, 3, 4, 6, 12}
		m0 := splits[int(m0raw)%len(splits)]
		m1 := m / m0
		// Build flat K/V, then split.
		k := tensor.Rand(seed+2, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}, tensor.Dim{Name: "m", Size: m})
		v := tensor.Rand(seed+3, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: fv}, tensor.Dim{Name: "m", Size: m})
		q := tensor.Rand(seed+1, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}, tensor.Dim{Name: "p", Size: p})
		env := eval.Env{"Q": q, "BK": k.SplitDim("m", "m1", "m0", m0), "BV": v.SplitDim("m", "m1", "m0", m0)}
		out, err := Attention().Run(env, attentionDims(h, e, fv, p, m1, m0))
		if err != nil {
			return false
		}
		want := RefAttention(q, k, v)
		return tensor.MaxAbsDiff(out["AV"], want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The streaming softmax must stay numerically stable for large score
// magnitudes where a naive exp would overflow.
func TestAttentionNumericalStability(t *testing.T) {
	h, e, f, p, m1, m0 := 1, 2, 2, 1, 3, 2
	env := randQKV(7, h, e, f, p, m1, m0)
	// Scale Q so raw scores reach ~1e3; exp(1e3) overflows float64.
	env["Q"].Apply(func(v float64) float64 { return v * 500 })
	out, err := Attention().Run(env, attentionDims(h, e, f, p, m1, m0))
	if err != nil {
		t.Fatal(err)
	}
	out["AV"].Each(func(_ map[string]int, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("streaming attention produced %v on large scores", v)
		}
	})
	want := RefAttention(env["Q"], mergeKV(env["BK"]), mergeKV(env["BV"]))
	if d := tensor.MaxAbsDiff(out["AV"], want); d > 1e-9 {
		t.Fatalf("deviation %v on large-score input", d)
	}
}

func TestQKVMatchesReference(t *testing.T) {
	d, h, e, f, p, m1, m0 := 6, 2, 3, 3, 4, 2, 2
	dims := map[string]int{"d": d, "h": h, "e": e, "f": f, "p": p, "m1": m1, "m0": m0}
	input := tensor.Rand(11, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "p", Size: p})
	inputKV := renameDim(input.Clone().Narrow("p", 0, m1*m0), "p", "m").SplitDim("m", "m1", "m0", m0)
	w := RandLayerWeights(5, d, h, e, f, 8)
	env := eval.Env{"INPUT": input, "INPUTKV": inputKV, "WQ": w.WQ, "WK": w.WK, "WV": w.WV}
	out, err := QKV().Run(env, dims)
	if err != nil {
		t.Fatal(err)
	}
	wantQ := RefProject(input, w.WQ, "e")
	if dd := tensor.MaxAbsDiff(out["Q"], wantQ); dd > 1e-9 {
		t.Fatalf("Q deviates by %v", dd)
	}
	wantK := RefProject(renameDim(inputKV.MergeDims("m1", "m0", "m"), "m", "p"), w.WK, "e")
	gotK := renameDim(out["BK"].MergeDims("m1", "m0", "m"), "m", "p")
	if dd := tensor.MaxAbsDiff(gotK, wantK); dd > 1e-9 {
		t.Fatalf("K deviates by %v", dd)
	}
	wantV := RefProject(renameDim(inputKV.MergeDims("m1", "m0", "m"), "m", "p"), w.WV, "f")
	gotV := renameDim(out["BV"].MergeDims("m1", "m0", "m"), "m", "p")
	if dd := tensor.MaxAbsDiff(gotV, wantV); dd > 1e-9 {
		t.Fatalf("V deviates by %v", dd)
	}
}

func TestAddLayerNormMatchesReference(t *testing.T) {
	h, f, p := 2, 4, 3
	dims := map[string]int{"h": h, "f": f, "p": p}
	inp := tensor.Rand(21, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}, tensor.Dim{Name: "p", Size: p})
	av := tensor.Rand(22, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}, tensor.Dim{Name: "p", Size: p})
	out, err := AddLayerNorm(1/float64(h*f)).Run(eval.Env{"INP": inp, "AV": av}, dims)
	if err != nil {
		t.Fatal(err)
	}
	want := RefAddLayerNorm(inp, av)
	if d := tensor.MaxAbsDiff(out["NR"], want); d > 1e-9 {
		t.Fatalf("LayerNorm deviates by %v", d)
	}
	// Normalised output must have ~zero mean and ~unit variance per token.
	for pi := 0; pi < p; pi++ {
		sum, sq := 0.0, 0.0
		for hi := 0; hi < h; hi++ {
			for fi := 0; fi < f; fi++ {
				v := out["NR"].At(map[string]int{"h": hi, "f": fi, "p": pi})
				sum += v
				sq += v * v
			}
		}
		n := float64(h * f)
		if math.Abs(sum/n) > 1e-9 {
			t.Fatalf("token %d mean = %v, want ~0", pi, sum/n)
		}
		if math.Abs(sq/n-1) > 1e-6 {
			t.Fatalf("token %d variance = %v, want ~1", pi, sq/n)
		}
	}
}

func TestFFNMatchesReference(t *testing.T) {
	for _, act := range []string{"relu", "gelu", "silu"} {
		h, f, p, s := 2, 3, 2, 5
		dims := map[string]int{"h": h, "f": f, "p": p, "s": s}
		x := tensor.Rand(31, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}, tensor.Dim{Name: "p", Size: p})
		w := RandLayerWeights(9, 6, h, f, f, s)
		env := eval.Env{"NR": x, "WF1": w.WF1, "BF1": w.BF1, "WF2": w.WF2, "BF2": w.BF2}
		out, err := FFN(act).Run(env, dims)
		if err != nil {
			t.Fatalf("%s: %v", act, err)
		}
		actF := einsum.ActivationByName(act)
		want := RefFFN(x, w.WF1, w.BF1, w.WF2, w.BF2, func(v float64) float64 { return actF([]float64{v}) })
		if d := tensor.MaxAbsDiff(out["FFN2B"], want); d > 1e-9 {
			t.Fatalf("%s FFN deviates by %v", act, d)
		}
	}
}

// End-to-end: a full Transformer layer through all four cascades matches the
// composition of the naive references.
func TestRunLayerMatchesReferenceComposition(t *testing.T) {
	d, h, e, p, s, m0 := 6, 2, 3, 4, 5, 2
	f := e
	input := tensor.Rand(101, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "p", Size: p})
	w := RandLayerWeights(55, d, h, e, f, s)

	got, err := RunLayer(input, w, m0, "gelu")
	if err != nil {
		t.Fatal(err)
	}

	// Reference composition.
	q := RefProject(input, w.WQ, "e")
	kv := renameDim(input.Clone(), "p", "m")
	k := RefProject(renameDim(kv.Clone(), "m", "p"), w.WK, "e")
	k = renameDim(k, "p", "m")
	v := RefProject(renameDim(kv.Clone(), "m", "p"), w.WV, "f")
	v = renameDim(v, "p", "m")
	av := RefAttention(q, k, v)
	nr := RefAddLayerNorm(renameDim(q.Clone(), "e", "f"), av)
	gelu := einsum.ActivationByName("gelu")
	want := RefFFN(nr, w.WF1, w.BF1, w.WF2, w.BF2, func(x float64) float64 { return gelu([]float64{x}) })

	if dd := tensor.MaxAbsDiff(got, want); dd > 1e-8 {
		t.Fatalf("full layer deviates from reference composition by %v", dd)
	}
}

func TestRunLayerRejectsBadTile(t *testing.T) {
	input := tensor.Rand(1, tensor.Dim{Name: "d", Size: 4}, tensor.Dim{Name: "p", Size: 5})
	w := RandLayerWeights(2, 4, 2, 2, 2, 4)
	if _, err := RunLayer(input, w, 2, "relu"); err == nil {
		t.Fatal("RunLayer with non-dividing m0 succeeded")
	}
	if _, err := RunLayer(input, w, 0, "relu"); err == nil {
		t.Fatal("RunLayer with m0=0 succeeded")
	}
}

func TestValidateCatchesBrokenCascades(t *testing.T) {
	dims := attentionDims(2, 3, 3, 4, 2, 5)

	// Reading a tensor before it is produced.
	broken := &Cascade{
		Name: "broken",
		Body: []*einsum.Einsum{
			einsum.Map("B", []string{"p"}, einsum.Identity, einsum.In("A", "p")),
		},
		Inputs: []string{},
	}
	if err := broken.Validate(dims); err == nil {
		t.Fatal("Validate accepted read-before-produce")
	}

	// Duplicate producer.
	dup := &Cascade{
		Name: "dup",
		Body: []*einsum.Einsum{
			einsum.Map("B", []string{"p"}, einsum.Identity, einsum.In("A", "p")),
			einsum.Map("B", []string{"p"}, einsum.Identity, einsum.In("A", "p")),
		},
		Inputs: []string{"A"},
	}
	if err := dup.Validate(dims); err == nil {
		t.Fatal("Validate accepted duplicate producer")
	}

	// State without loop.
	noLoop := &Cascade{
		Name:  "noloop",
		State: []StateVar{{Name: "S", Idx: []string{"p"}}},
		Body: []*einsum.Einsum{
			einsum.Map("S_next", []string{"p"}, einsum.Identity, einsum.In("S", "p")),
		},
	}
	if err := noLoop.Validate(dims); err == nil {
		t.Fatal("Validate accepted state without loop index")
	}

	// State without an update einsum.
	noUpdate := &Cascade{
		Name:      "noupdate",
		LoopIndex: "m1",
		State:     []StateVar{{Name: "S", Idx: []string{"p"}}},
		Body: []*einsum.Einsum{
			einsum.Map("T", []string{"p"}, einsum.Identity, einsum.In("S", "p")),
		},
	}
	if err := noUpdate.Validate(dims); err == nil {
		t.Fatal("Validate accepted state without update")
	}

	// Declared output never produced.
	noOut := &Cascade{
		Name:    "noout",
		Body:    []*einsum.Einsum{einsum.Map("B", []string{"p"}, einsum.Identity, einsum.In("A", "p"))},
		Inputs:  []string{"A"},
		Outputs: []string{"Z"},
	}
	if err := noOut.Validate(dims); err == nil {
		t.Fatal("Validate accepted missing declared output")
	}
}

func TestRunMissingInput(t *testing.T) {
	_, err := Attention().Run(eval.Env{}, attentionDims(1, 2, 2, 1, 2, 2))
	if err == nil {
		t.Fatal("Run without inputs succeeded")
	}
}

func TestAllAndFind(t *testing.T) {
	c := Attention()
	if got := len(c.All()); got != 12 {
		t.Fatalf("All() = %d einsums", got)
	}
	if c.Find("SLNV") == nil {
		t.Fatal("Find(SLNV) = nil")
	}
	if c.Find("nope") != nil {
		t.Fatal("Find(nope) != nil")
	}
}

func TestLayerCascadesOrder(t *testing.T) {
	cs := LayerCascades(1.0/8, "relu")
	wantNames := []string{"QKV", "MHA", "AddLayerNorm", "FFN"}
	if len(cs) != len(wantNames) {
		t.Fatalf("LayerCascades returned %d cascades", len(cs))
	}
	for i, c := range cs {
		if c.Name != wantNames[i] {
			t.Fatalf("cascade %d = %s, want %s", i, c.Name, wantNames[i])
		}
	}
}

// Property: attention output rows are convex combinations of V rows — every
// output element lies within [min V, max V] for its (h, f).
func TestQuickAttentionConvexity(t *testing.T) {
	f := func(seed uint64) bool {
		const h, e, fv, p, m1, m0 = 2, 3, 3, 2, 2, 3
		env := randQKV(seed|1, h, e, fv, p, m1, m0)
		out, err := Attention().Run(env, attentionDims(h, e, fv, p, m1, m0))
		if err != nil {
			return false
		}
		v := mergeKV(env["BV"])
		for hi := 0; hi < h; hi++ {
			for fi := 0; fi < fv; fi++ {
				lo, hiV := math.Inf(1), math.Inf(-1)
				for mi := 0; mi < m1*m0; mi++ {
					val := v.At(map[string]int{"h": hi, "f": fi, "m": mi})
					lo = math.Min(lo, val)
					hiV = math.Max(hiV, val)
				}
				for pi := 0; pi < p; pi++ {
					got := out["AV"].At(map[string]int{"h": hi, "f": fi, "p": pi})
					if got < lo-1e-9 || got > hiV+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
