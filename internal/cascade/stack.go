package cascade

import (
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/eval"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

// Stack composition (§3.2): TransFusion composes encoders, decoders, and
// hybrid configurations from the same shape-consistent cascades — every
// sub-layer consumes and produces [h, f, p] activations, so reordering is
// free. This file provides the functional composition: a full decoder
// layer (masked self-attention -> cross-attention over encoder memory ->
// Add & LayerNorm -> FFN) and a multi-layer encoder stack, both executed
// through the Einsum-cascade interpreter.

// RunEncoderStack chains `layers` full encoder layers (QKV -> streaming
// MHA -> Add&LayerNorm -> FFN). Each layer has its own deterministic
// weights derived from seed. The output of layer l (reshaped back to
// [d, p] by flattening heads) is layer l+1's input.
func RunEncoderStack(input *tensor.Tensor, seed uint64, layers, m0 int, activation string) (*tensor.Tensor, error) {
	if layers < 1 {
		return nil, fmt.Errorf("cascade: RunEncoderStack needs >= 1 layer, got %d", layers)
	}
	d := input.MustSize("d")
	x := input
	for l := 0; l < layers; l++ {
		// Dimensions are re-derived per layer from the weights below; keep
		// h*e == d so the flattened output feeds the next layer.
		h, e := stackHeads(d)
		w := RandLayerWeights(seed+uint64(l)*1000, d, h, e, e, 2*d)
		out, err := RunLayer(x, w, m0, activation)
		if err != nil {
			return nil, fmt.Errorf("cascade: encoder layer %d: %w", l, err)
		}
		// Flatten [h,f,p] back to [d,p] for the next layer.
		x = flattenHeads(out)
	}
	return x, nil
}

// stackHeads picks a head split for a hidden dimension: the largest power
// of two <= 8 that divides d with an even per-head size.
func stackHeads(d int) (h, e int) {
	for _, cand := range []int{8, 4, 2, 1} {
		if d%cand == 0 {
			return cand, d / cand
		}
	}
	return 1, d
}

// flattenHeads reshapes [h,f,p] activations to [d,p] with d = h*f,
// head-major (matching how RefProject splits d into (h, e)).
func flattenHeads(t *tensor.Tensor) *tensor.Tensor {
	h := t.MustSize("h")
	f := t.MustSize("f")
	p := t.MustSize("p")
	out := tensor.New(tensor.Dim{Name: "d", Size: h * f}, tensor.Dim{Name: "p", Size: p})
	t.Each(func(coord map[string]int, v float64) {
		out.Set(map[string]int{"d": coord["h"]*f + coord["f"], "p": coord["p"]}, v)
	})
	return out
}

// DecoderWeights holds one decoder layer's parameters: masked
// self-attention plus cross-attention projections (queries from the
// decoder stream, keys/values from the encoder memory).
type DecoderWeights struct {
	Self                   *LayerWeights  // self-attention QKV + FFN
	CrossQ, CrossK, CrossV *tensor.Tensor // [d,h,e] / [d,h,e] / [d,h,f]
}

// RandDecoderWeights builds deterministic decoder-layer weights.
func RandDecoderWeights(seed uint64, d, h, e, f, s int) *DecoderWeights {
	scale := func(t *tensor.Tensor, fanIn int) *tensor.Tensor {
		k := 1 / float64(fanIn)
		return t.Apply(func(v float64) float64 { return v * k })
	}
	return &DecoderWeights{
		Self:   RandLayerWeights(seed, d, h, e, f, s),
		CrossQ: scale(tensor.Rand(seed+11, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}), d),
		CrossK: scale(tensor.Rand(seed+12, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}), d),
		CrossV: scale(tensor.Rand(seed+13, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}), d),
	}
}

// RunDecoderLayer executes one decoder layer through the cascades:
//
//	masked self-attention over x (queries at global offset 0),
//	Add & LayerNorm,
//	cross-attention (queries from the normalised stream, keys/values
//	projected from the encoder memory, unmasked),
//	Add & LayerNorm,
//	FFN.
//
// x is the decoder stream [d,p]; memory is the encoder output [d,mem].
// m0 must divide both p and mem. Returns [h,f,p].
func RunDecoderLayer(x, memory *tensor.Tensor, w *DecoderWeights, m0 int, activation string) (*tensor.Tensor, error) {
	p := x.MustSize("p")
	mem := memory.MustSize("p")
	if m0 <= 0 || p%m0 != 0 || mem%m0 != 0 {
		return nil, fmt.Errorf("cascade: m0=%d must divide decoder length %d and memory length %d", m0, p, mem)
	}
	d := x.MustSize("d")
	h := w.Self.WQ.MustSize("h")
	e := w.Self.WQ.MustSize("e")
	f := w.Self.WV.MustSize("f")
	s := w.Self.WF1.MustSize("s")
	if e != f {
		return nil, fmt.Errorf("cascade: RunDecoderLayer requires E == F")
	}

	// Masked self-attention.
	selfDims := map[string]int{"d": d, "p": p, "h": h, "e": e, "f": f, "s": s, "m1": p / m0, "m0": m0}
	xKV := renameDim(x.Clone(), "p", "m").SplitDim("m", "m1", "m0", m0)
	env := eval.Env{"INPUT": x, "INPUTKV": xKV, "WQ": w.Self.WQ, "WK": w.Self.WK, "WV": w.Self.WV}
	env, err := QKV().Run(env, selfDims)
	if err != nil {
		return nil, fmt.Errorf("cascade: decoder self QKV: %w", err)
	}
	env["MASK"] = CausalMask(p/m0, m0, p, 0)
	env, err = CausalAttention().Run(env, selfDims)
	if err != nil {
		return nil, fmt.Errorf("cascade: decoder self attention: %w", err)
	}
	env["INP"] = renameDim(env["Q"].Clone(), "e", "f")
	env, err = AddLayerNorm(1/float64(h*f)).Run(env, selfDims)
	if err != nil {
		return nil, fmt.Errorf("cascade: decoder self LN: %w", err)
	}
	selfOut := env["NR"] // [h,f,p]

	// Cross-attention: queries from selfOut (flattened back to [d,p]),
	// keys/values from the encoder memory.
	crossDims := map[string]int{"d": d, "p": p, "h": h, "e": e, "f": f, "s": s, "m1": mem / m0, "m0": m0}
	memKV := renameDim(memory.Clone(), "p", "m").SplitDim("m", "m1", "m0", m0)
	crossEnv := eval.Env{
		"INPUT":   flattenHeads(selfOut),
		"INPUTKV": memKV,
		"WQ":      w.CrossQ, "WK": w.CrossK, "WV": w.CrossV,
	}
	crossEnv, err = QKV().Run(crossEnv, crossDims)
	if err != nil {
		return nil, fmt.Errorf("cascade: decoder cross QKV: %w", err)
	}
	crossEnv, err = Attention().Run(crossEnv, crossDims)
	if err != nil {
		return nil, fmt.Errorf("cascade: decoder cross attention: %w", err)
	}
	// Residual around cross-attention: the self-attention stream.
	crossEnv["INP"] = selfOut
	crossEnv, err = AddLayerNorm(1/float64(h*f)).Run(crossEnv, crossDims)
	if err != nil {
		return nil, fmt.Errorf("cascade: decoder cross LN: %w", err)
	}

	// FFN.
	crossEnv["WF1"], crossEnv["BF1"] = w.Self.WF1, w.Self.BF1
	crossEnv["WF2"], crossEnv["BF2"] = w.Self.WF2, w.Self.BF2
	crossEnv, err = FFN(activation).Run(crossEnv, crossDims)
	if err != nil {
		return nil, fmt.Errorf("cascade: decoder FFN: %w", err)
	}
	return crossEnv["FFN2B"], nil
}
