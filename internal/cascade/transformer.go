package cascade

import (
	"github.com/fusedmindlab/transfusion/internal/einsum"
)

// Dimension-label conventions, following the paper:
//
//	d      model (hidden) dimension of the input
//	h      attention heads
//	e      per-head query/key embedding dimension
//	f      per-head value embedding dimension (E = F in all workloads)
//	p      query-sequence positions in the current outer tile
//	m1,m0  hierarchical split of the key/value sequence (outer / inner tile)
//	s      FFN hidden dimension
//
// The batch dimension b is omitted from the cascades exactly as in the
// paper (§3.1); it scales loads multiplicatively and is reintroduced by the
// performance model.

// QKV builds Einsum Cascade 2: the tiled Q/K/V projections with a shared
// input (Eqs. 25–27). Inputs: INPUT[d,p] (the query tile), INPUTKV[d,m1,m0]
// (the key/value sequence), and the three weight tensors. The K/V outputs
// are produced in blocked (m1,m0) layout, matching the layout Cascade 1
// consumes.
func QKV() *Cascade {
	return &Cascade{
		Name: "QKV",
		Body: []*einsum.Einsum{
			einsum.New("Q", []string{"h", "e", "p"},
				einsum.In("INPUT", "d", "p"), einsum.In("WQ", "d", "h", "e")),
			einsum.New("BK", []string{"h", "e", "m1", "m0"},
				einsum.In("INPUTKV", "d", "m1", "m0"), einsum.In("WK", "d", "h", "e")),
			einsum.New("BV", []string{"h", "f", "m1", "m0"},
				einsum.In("INPUTKV", "d", "m1", "m0"), einsum.In("WV", "d", "h", "f")),
		},
		Inputs:  []string{"INPUT", "INPUTKV", "WQ", "WK", "WV"},
		Outputs: []string{"Q", "BK", "BV"},
	}
}

// Attention builds Einsum Cascade 1: the 1-pass streaming attention dataflow
// of FlashAttention-2 / FuseMax (Eqs. 12–24). It is a recurrence over the
// outer key/value tile index m1, carrying the running max (RM), running
// softmax denominator (RD), and running numerator-times-V (RNV). The twelve
// primitive Einsums match the paper's description of FuseMax's fused MHA.
//
// Inputs: Q[h,e,p], BK[h,e,m1,m0], BV[h,f,m1,m0].
// Output: AV[h,f,p].
func Attention() *Cascade {
	return &Cascade{
		Name:      "MHA",
		LoopIndex: "m1",
		Body: []*einsum.Einsum{
			// Eq. 12: block dot product.
			einsum.New("BQK", []string{"m0", "h", "p"},
				einsum.In("Q", "h", "e", "p"), einsum.In("BK", "h", "e", "m0")),
			// Eq. 13: local max over the inner tile.
			einsum.Reduction("LM", []string{"h", "p"}, einsum.ReduceMax,
				einsum.In("BQK", "m0", "h", "p")),
			// Eq. 14: running-max update.
			einsum.Map("RM_next", []string{"h", "p"}, einsum.Max2,
				einsum.In("RM", "h", "p"), einsum.In("LM", "h", "p")),
			// Eq. 15: shifted exponential (local softmax numerator).
			einsum.Map("SLN", []string{"m0", "h", "p"}, einsum.ExpSub,
				einsum.In("BQK", "m0", "h", "p"), einsum.In("RM_next", "h", "p")),
			// Eq. 16: local softmax denominator.
			einsum.Reduction("SLD", []string{"h", "p"}, einsum.ReduceSum,
				einsum.In("SLN", "m0", "h", "p")),
			// Eq. 17: local numerator times V.
			einsum.New("SLNV", []string{"h", "f", "p"},
				einsum.In("SLN", "m0", "h", "p"), einsum.In("BV", "h", "f", "m0")),
			// Eq. 18: correction factor for previously accumulated state.
			einsum.Map("PRM", []string{"h", "p"}, einsum.ExpSub,
				einsum.In("RM", "h", "p"), einsum.In("RM_next", "h", "p")),
			// Eq. 19: rescaled past denominator.
			einsum.Map("SPD", []string{"h", "p"}, einsum.Mul2,
				einsum.In("RD", "h", "p"), einsum.In("PRM", "h", "p")),
			// Eq. 20: running-denominator update.
			einsum.Map("RD_next", []string{"h", "p"}, einsum.Add2,
				einsum.In("SLD", "h", "p"), einsum.In("SPD", "h", "p")),
			// Eq. 21: rescaled past numerator-times-V.
			einsum.Map("SPNV", []string{"h", "f", "p"}, einsum.Mul2,
				einsum.In("RNV", "h", "f", "p"), einsum.In("PRM", "h", "p")),
			// Eq. 22: running numerator-times-V update.
			einsum.Map("RNV_next", []string{"h", "f", "p"}, einsum.Add2,
				einsum.In("SLNV", "h", "f", "p"), einsum.In("SPNV", "h", "f", "p")),
		},
		Final: []*einsum.Einsum{
			// Eq. 23: final normalisation.
			einsum.Map("AV", []string{"h", "f", "p"}, einsum.Div2,
				einsum.In("RNV", "h", "f", "p"), einsum.In("RD", "h", "p")),
		},
		State: []StateVar{
			{Name: "RM", Idx: []string{"h", "p"}, Init: negInf},
			{Name: "RD", Idx: []string{"h", "p"}, Init: 0},
			{Name: "RNV", Idx: []string{"h", "f", "p"}, Init: 0},
		},
		Inputs:  []string{"Q", "BK", "BV"},
		Outputs: []string{"AV"},
	}
}

// AddLayerNorm builds Einsum Cascade 3: the residual addition followed by
// LayerNorm over the flattened (h, f) feature dimensions per token position
// (Eqs. 28–36). The scale (gamma) and shift (beta) are deferred and fused
// into the subsequent layer following Li et al., exactly as the paper does,
// so the cascade produces the unscaled normalised activations NR.
//
// Inputs: INP[h,f,p] (residual), AV[h,f,p]. Output: NR[h,f,p].
// invHF must be 1/(H*F) for the mean computations.
func AddLayerNorm(invHF float64) *Cascade {
	return &Cascade{
		Name: "AddLayerNorm",
		Body: []*einsum.Einsum{
			// Eq. 28: residual addition.
			einsum.Map("IAV", []string{"h", "f", "p"}, einsum.Add2,
				einsum.In("INP", "h", "f", "p"), einsum.In("AV", "h", "f", "p")),
			// Eq. 29: feature sum per token.
			einsum.Reduction("SAV", []string{"p"}, einsum.ReduceSum,
				einsum.In("IAV", "h", "f", "p")),
			// Eq. 30: mean.
			einsum.Map("MAV", []string{"p"}, einsum.Scale(invHF),
				einsum.In("SAV", "p")),
			// Eq. 31: centring.
			einsum.Map("DAV", []string{"h", "f", "p"}, einsum.Sub2,
				einsum.In("IAV", "h", "f", "p"), einsum.In("MAV", "p")),
			// Eq. 32: squared deviations.
			einsum.Map("QAV", []string{"h", "f", "p"}, einsum.Mul2,
				einsum.In("DAV", "h", "f", "p"), einsum.In("DAV", "h", "f", "p")),
			// Eq. 33: sum of squares.
			einsum.Reduction("SQAV", []string{"p"}, einsum.ReduceSum,
				einsum.In("QAV", "h", "f", "p")),
			// Eq. 34: variance.
			einsum.Map("MQAV", []string{"p"}, einsum.Scale(invHF),
				einsum.In("SQAV", "p")),
			// Eq. 35: reciprocal standard deviation.
			einsum.Map("SR", []string{"p"}, einsum.RSqrt,
				einsum.In("MQAV", "p")),
			// Eq. 36: normalisation.
			einsum.Map("NR", []string{"h", "f", "p"}, einsum.Mul2,
				einsum.In("DAV", "h", "f", "p"), einsum.In("SR", "p")),
		},
		Inputs:  []string{"INP", "AV"},
		Outputs: []string{"NR"},
	}
}

// FFN builds Einsum Cascade 4: the position-wise feed-forward network
// (Eqs. 37–39). The two bias additions are modelled as separate map Einsums
// so the DAG exposes them to the scheduler (they are 1D-array work in every
// baseline dataflow). activation names the nonlinearity ("relu", "gelu",
// "silu").
//
// Inputs: NR[h,f,p], WF1[h,f,s], BF1[s], WF2[h,f,s], BF2[h,f].
// Output: FFN2B[h,f,p].
func FFN(activation string) *Cascade {
	return &Cascade{
		Name: "FFN",
		Body: []*einsum.Einsum{
			// Eq. 37: first linear layer.
			einsum.New("FFN1", []string{"s", "p"},
				einsum.In("NR", "h", "f", "p"), einsum.In("WF1", "h", "f", "s")),
			einsum.Map("FFN1B", []string{"s", "p"}, einsum.Add2,
				einsum.In("FFN1", "s", "p"), einsum.In("BF1", "s")),
			// Eq. 38: activation.
			einsum.Map("AR", []string{"s", "p"}, einsum.ActivationByName(activation),
				einsum.In("FFN1B", "s", "p")),
			// Eq. 39: second linear layer.
			einsum.New("FFN2", []string{"h", "f", "p"},
				einsum.In("AR", "s", "p"), einsum.In("WF2", "h", "f", "s")),
			einsum.Map("FFN2B", []string{"h", "f", "p"}, einsum.Add2,
				einsum.In("FFN2", "h", "f", "p"), einsum.In("BF2", "h", "f")),
		},
		Inputs:  []string{"NR", "WF1", "BF1", "WF2", "BF2"},
		Outputs: []string{"FFN2B"},
	}
}

// LayerCascades returns the four cascades of one Transformer layer in
// execution order. invHF is 1/(H*F); activation names the FFN nonlinearity.
func LayerCascades(invHF float64, activation string) []*Cascade {
	return []*Cascade{QKV(), Attention(), AddLayerNorm(invHF), FFN(activation)}
}
