package cascade

import (
	"testing"

	"github.com/fusedmindlab/transfusion/internal/eval"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

// The naive baseline cascade must compute the same function as both the
// reference implementation and the streaming cascade.
func TestNaiveAttentionMatchesReference(t *testing.T) {
	h, e, f, p, m := 2, 3, 3, 4, 6
	q := tensor.Rand(61, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}, tensor.Dim{Name: "p", Size: p})
	k := tensor.Rand(62, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}, tensor.Dim{Name: "m0", Size: m})
	v := tensor.Rand(63, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}, tensor.Dim{Name: "m0", Size: m})
	dims := map[string]int{"h": h, "e": e, "f": f, "p": p, "m0": m}
	out, err := NaiveAttention().Run(eval.Env{"Q": q, "BK": k, "BV": v}, dims)
	if err != nil {
		t.Fatal(err)
	}
	want := RefAttention(q, renameDim(k.Clone(), "m0", "m"), renameDim(v.Clone(), "m0", "m"))
	if d := tensor.MaxAbsDiff(out["AV"], want); d > 1e-9 {
		t.Fatalf("naive cascade deviates from reference by %v", d)
	}
}

func TestNaiveAttentionValidates(t *testing.T) {
	dims := map[string]int{"h": 2, "e": 3, "f": 3, "p": 4, "m0": 6}
	if err := NaiveAttention().Validate(dims); err != nil {
		t.Fatal(err)
	}
	if got := len(NaiveAttention().Body); got != 6 {
		t.Fatalf("naive attention has %d ops, want 6", got)
	}
}

// Streaming and naive cascades agree with each other on identical inputs.
func TestNaiveAndStreamingAgree(t *testing.T) {
	h, e, f, p, m1, m0 := 2, 4, 4, 3, 3, 2
	env := randQKV(77, h, e, f, p, m1, m0)
	streamOut, err := Attention().Run(env, attentionDims(h, e, f, p, m1, m0))
	if err != nil {
		t.Fatal(err)
	}
	flatK := renameDim(mergeKV(env["BK"]), "m", "m0")
	flatV := renameDim(mergeKV(env["BV"]), "m", "m0")
	naiveOut, err := NaiveAttention().Run(
		eval.Env{"Q": env["Q"], "BK": flatK, "BV": flatV},
		map[string]int{"h": h, "e": e, "f": f, "p": p, "m0": m1 * m0})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(streamOut["AV"], naiveOut["AV"]); d > 1e-9 {
		t.Fatalf("streaming and naive disagree by %v", d)
	}
}
