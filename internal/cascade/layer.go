package cascade

import (
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/eval"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

// LayerWeights holds the parameter tensors of one Transformer layer in the
// layouts the cascades consume.
type LayerWeights struct {
	WQ  *tensor.Tensor // [d,h,e]
	WK  *tensor.Tensor // [d,h,e]
	WV  *tensor.Tensor // [d,h,f]
	WF1 *tensor.Tensor // [h,f,s]
	BF1 *tensor.Tensor // [s]
	WF2 *tensor.Tensor // [h,f,s]
	BF2 *tensor.Tensor // [h,f]
}

// RandLayerWeights generates deterministic pseudo-random weights for the
// given dimensions. Values are scaled down by the fan-in so activations stay
// in a numerically tame range even for large d.
func RandLayerWeights(seed uint64, d, h, e, f, s int) *LayerWeights {
	scale := func(t *tensor.Tensor, fanIn int) *tensor.Tensor {
		k := 1 / float64(fanIn)
		return t.Apply(func(v float64) float64 { return v * k })
	}
	return &LayerWeights{
		WQ:  scale(tensor.Rand(seed+1, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}), d),
		WK:  scale(tensor.Rand(seed+2, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "e", Size: e}), d),
		WV:  scale(tensor.Rand(seed+3, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}), d),
		WF1: scale(tensor.Rand(seed+4, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}, tensor.Dim{Name: "s", Size: s}), h*f),
		BF1: tensor.Rand(seed+5, tensor.Dim{Name: "s", Size: s}),
		WF2: scale(tensor.Rand(seed+6, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}, tensor.Dim{Name: "s", Size: s}), s),
		BF2: tensor.Rand(seed+7, tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}),
	}
}

// RunLayer executes one full Transformer layer — QKV projection, 1-pass
// streaming MHA, Add & LayerNorm, FFN — by chaining the four Einsum
// Cascades, with intermediates propagated tensor-to-tensor exactly as
// TransFusion's inter-layer fusion propagates them buffer-to-buffer.
//
// input is [d,p] (the full sequence; p doubles as both the query tile and,
// reshaped through the (m1, m0) split, the key/value sequence). m0 is the
// inner key/value tile size and must divide the sequence length. activation
// names the FFN nonlinearity.
//
// The residual connection for the Add & LayerNorm stage uses the attention
// *input* reinterpreted per head — here the Q projection — which keeps the
// functional test self-contained without modelling the embedding layer.
func RunLayer(input *tensor.Tensor, w *LayerWeights, m0 int, activation string) (*tensor.Tensor, error) {
	p := input.MustSize("p")
	if m0 <= 0 || p%m0 != 0 {
		return nil, fmt.Errorf("cascade: inner tile m0=%d does not divide sequence length %d", m0, p)
	}
	d := input.MustSize("d")
	h := w.WQ.MustSize("h")
	e := w.WQ.MustSize("e")
	f := w.WV.MustSize("f")
	s := w.WF1.MustSize("s")
	m1 := p / m0

	dims := map[string]int{"d": d, "p": p, "h": h, "e": e, "f": f, "s": s, "m1": m1, "m0": m0}

	// Cascade 2: QKV. The key/value input is the same sequence, reshaped
	// into (m1, m0) blocks.
	inputKV := input.Clone()
	inputKV = renameDim(inputKV, "p", "m")
	inputKV = inputKV.SplitDim("m", "m1", "m0", m0)
	env := eval.Env{
		"INPUT": input, "INPUTKV": inputKV,
		"WQ": w.WQ, "WK": w.WK, "WV": w.WV,
	}
	env, err := QKV().Run(env, dims)
	if err != nil {
		return nil, err
	}

	// Cascade 1: streaming MHA.
	env, err = Attention().Run(env, dims)
	if err != nil {
		return nil, err
	}

	// Cascade 3: Add & LayerNorm; the residual is the Q projection (shape
	// [h,e,p] with e == f).
	if e != f {
		return nil, fmt.Errorf("cascade: RunLayer requires E == F, got %d != %d", e, f)
	}
	env["INP"] = renameDim(env["Q"].Clone(), "e", "f")
	env, err = AddLayerNorm(1/float64(h*f)).Run(env, dims)
	if err != nil {
		return nil, err
	}

	// Cascade 4: FFN.
	env["WF1"], env["BF1"], env["WF2"], env["BF2"] = w.WF1, w.BF1, w.WF2, w.BF2
	env, err = FFN(activation).Run(env, dims)
	if err != nil {
		return nil, err
	}
	return env["FFN2B"], nil
}

// renameDim returns a tensor identical to t but with dimension old renamed
// to new. Used to move tensors between the cascades' index vocabularies.
func renameDim(t *tensor.Tensor, old, new string) *tensor.Tensor {
	dims := t.Dims()
	for i := range dims {
		if dims[i].Name == old {
			dims[i].Name = new
		}
	}
	out := tensor.New(dims...)
	copy(out.Data(), t.Data())
	return out
}
