package cascade

import (
	"math"

	"github.com/fusedmindlab/transfusion/internal/tensor"
)

// This file contains naive reference implementations of the Transformer
// sub-layers. They deliberately materialise every intermediate (the full
// attention-score matrix, the full softmax output) — exactly the dataflow
// the Unfused baseline models — and serve as ground truth for validating
// that the streaming Einsum Cascades compute the same function.

// RefAttention computes softmax(Q^T K) V naively with a two-pass,
// full-materialisation softmax. Q is [h,e,p], K is [h,e,m], V is [h,f,m];
// the result is [h,f,p]. No 1/sqrt(dk) scaling is applied — like the
// paper's Cascade 1, the scale is assumed to be folded into Q upstream.
func RefAttention(q, k, v *tensor.Tensor) *tensor.Tensor {
	h := q.MustSize("h")
	e := q.MustSize("e")
	p := q.MustSize("p")
	m := k.MustSize("m")
	f := v.MustSize("f")
	out := tensor.New(tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}, tensor.Dim{Name: "p", Size: p})
	scores := make([]float64, m)
	for hi := 0; hi < h; hi++ {
		for pi := 0; pi < p; pi++ {
			maxScore := math.Inf(-1)
			for mi := 0; mi < m; mi++ {
				s := 0.0
				for ei := 0; ei < e; ei++ {
					s += q.At(map[string]int{"h": hi, "e": ei, "p": pi}) *
						k.At(map[string]int{"h": hi, "e": ei, "m": mi})
				}
				scores[mi] = s
				if s > maxScore {
					maxScore = s
				}
			}
			den := 0.0
			for mi := 0; mi < m; mi++ {
				scores[mi] = math.Exp(scores[mi] - maxScore)
				den += scores[mi]
			}
			for fi := 0; fi < f; fi++ {
				num := 0.0
				for mi := 0; mi < m; mi++ {
					num += scores[mi] * v.At(map[string]int{"h": hi, "f": fi, "m": mi})
				}
				out.Set(map[string]int{"h": hi, "f": fi, "p": pi}, num/den)
			}
		}
	}
	return out
}

// RefAddLayerNorm computes LayerNorm(inp + av) over the flattened (h, f)
// features per position p, without affine scale/shift (deferred, as in the
// paper). Inputs and output are [h,f,p].
func RefAddLayerNorm(inp, av *tensor.Tensor) *tensor.Tensor {
	h := inp.MustSize("h")
	f := inp.MustSize("f")
	p := inp.MustSize("p")
	n := float64(h * f)
	out := tensor.New(tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}, tensor.Dim{Name: "p", Size: p})
	for pi := 0; pi < p; pi++ {
		sum := 0.0
		for hi := 0; hi < h; hi++ {
			for fi := 0; fi < f; fi++ {
				c := map[string]int{"h": hi, "f": fi, "p": pi}
				sum += inp.At(c) + av.At(c)
			}
		}
		mean := sum / n
		varSum := 0.0
		for hi := 0; hi < h; hi++ {
			for fi := 0; fi < f; fi++ {
				c := map[string]int{"h": hi, "f": fi, "p": pi}
				d := inp.At(c) + av.At(c) - mean
				varSum += d * d
			}
		}
		inv := 1 / math.Sqrt(varSum/n+1e-12)
		for hi := 0; hi < h; hi++ {
			for fi := 0; fi < f; fi++ {
				c := map[string]int{"h": hi, "f": fi, "p": pi}
				out.Set(c, (inp.At(c)+av.At(c)-mean)*inv)
			}
		}
	}
	return out
}

// RefFFN computes act(x W1 + b1) W2 + b2 with x flattened over (h, f).
// x is [h,f,p], w1 is [h,f,s] (stored as d->(h,f)), b1 is [s], w2 is
// [h,f,s], b2 is [h,f]; the result is [h,f,p].
func RefFFN(x, w1, b1, w2, b2 *tensor.Tensor, act func(float64) float64) *tensor.Tensor {
	h := x.MustSize("h")
	f := x.MustSize("f")
	p := x.MustSize("p")
	s := w1.MustSize("s")
	out := tensor.New(tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: "f", Size: f}, tensor.Dim{Name: "p", Size: p})
	hidden := make([]float64, s)
	for pi := 0; pi < p; pi++ {
		for si := 0; si < s; si++ {
			acc := b1.At(map[string]int{"s": si})
			for hi := 0; hi < h; hi++ {
				for fi := 0; fi < f; fi++ {
					acc += x.At(map[string]int{"h": hi, "f": fi, "p": pi}) *
						w1.At(map[string]int{"h": hi, "f": fi, "s": si})
				}
			}
			hidden[si] = act(acc)
		}
		for hi := 0; hi < h; hi++ {
			for fi := 0; fi < f; fi++ {
				acc := b2.At(map[string]int{"h": hi, "f": fi})
				for si := 0; si < s; si++ {
					acc += hidden[si] * w2.At(map[string]int{"h": hi, "f": fi, "s": si})
				}
				out.Set(map[string]int{"h": hi, "f": fi, "p": pi}, acc)
			}
		}
	}
	return out
}

// RefProject computes a linear projection out[h,x,p] = sum_d in[d,p] *
// w[d,h,x] where x is the name of the per-head output dimension ("e" or
// "f"); the naive counterpart of Cascade 2.
func RefProject(in, w *tensor.Tensor, xName string) *tensor.Tensor {
	d := in.MustSize("d")
	p := in.MustSize("p")
	h := w.MustSize("h")
	x := w.MustSize(xName)
	out := tensor.New(tensor.Dim{Name: "h", Size: h}, tensor.Dim{Name: xName, Size: x}, tensor.Dim{Name: "p", Size: p})
	for hi := 0; hi < h; hi++ {
		for xi := 0; xi < x; xi++ {
			for pi := 0; pi < p; pi++ {
				acc := 0.0
				for di := 0; di < d; di++ {
					acc += in.At(map[string]int{"d": di, "p": pi}) *
						w.At(map[string]int{"d": di, "h": hi, xName: xi})
				}
				out.Set(map[string]int{"h": hi, xName: xi, "p": pi}, acc)
			}
		}
	}
	return out
}
