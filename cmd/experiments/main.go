// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§6). Without flags it runs every experiment in
// presentation order; -exp selects one by ID.
//
// Usage:
//
//	experiments                 # everything (several minutes)
//	experiments -list           # list experiment IDs
//	experiments -exp fig8a      # one artifact
//	experiments -budget 32      # faster, smaller TileSeek budget
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"github.com/fusedmindlab/transfusion"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	exp := flag.String("exp", "", "experiment ID to run (empty = all)")
	budget := flag.Int("budget", 0, "TileSeek rollout budget (0 = default)")
	parallelism := flag.Int("parallelism", 0, "worker-pool size for grid cells, tile search, and DPipe (0 = GOMAXPROCS, 1 = serial; results are identical at any setting)")
	specChain := flag.Int("spec-chain", 0, "speculation replay steps on the master PRNG stream in the parallel tile search (0 = default; never changes results)")
	specLookahead := flag.Int("spec-lookahead", 0, "total speculation replay steps per snapshot in the parallel tile search (0 = default; never changes results)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	format := flag.String("format", "table", "output format: table or csv")
	logLevel := flag.String("log-level", "warn", "structured log level on stderr: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, id := range transfusion.ExperimentIDs() {
			desc, _ := transfusion.ExperimentDescription(id)
			fmt.Printf("%-18s %s\n", id, desc)
		}
		return nil
	}

	level, err := transfusion.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	ctx = transfusion.WithLogger(ctx, transfusion.NewLogger(os.Stderr, level, *logJSON))
	metrics := transfusion.NewMetrics()
	ctx = transfusion.WithMetrics(ctx, metrics)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	if *metricsOut != "" {
		defer func() {
			snap := metrics.Snapshot()
			data, err := snap.JSON()
			if err == nil {
				err = os.WriteFile(*metricsOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	ids := transfusion.ExperimentIDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := transfusion.RunExperimentReportOptions(ctx, id, transfusion.ExperimentRunOptions{
			SearchBudget: *budget, Parallelism: *parallelism,
			SpecChainSteps: *specChain, SpecLookahead: *specLookahead,
			CSV: *format == "csv",
		})
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", id, time.Since(start).Seconds(), rep.Output)
		// Degraded searches still produce valid (if pessimistic) numbers;
		// surface them on stderr so table consumers notice.
		for _, note := range rep.Notes {
			fmt.Fprintf(os.Stderr, "experiments: %s: %s\n", id, note)
		}
	}
	return nil
}
