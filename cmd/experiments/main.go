// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§6). Without flags it runs every experiment in
// presentation order; -exp selects one by ID.
//
// Usage:
//
//	experiments                 # everything (several minutes)
//	experiments -list           # list experiment IDs
//	experiments -exp fig8a      # one artifact
//	experiments -budget 32      # faster, smaller TileSeek budget
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/fusedmindlab/transfusion"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (empty = all)")
	budget := flag.Int("budget", 0, "TileSeek rollout budget (0 = default)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Parse()

	if *list {
		for _, id := range transfusion.ExperimentIDs() {
			desc, _ := transfusion.ExperimentDescription(id)
			fmt.Printf("%-18s %s\n", id, desc)
		}
		return
	}

	ids := transfusion.ExperimentIDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		var out string
		var err error
		if *format == "csv" {
			out, err = transfusion.RunExperimentCSV(id, *budget)
		} else {
			out, err = transfusion.RunExperiment(id, *budget)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", id, time.Since(start).Seconds(), out)
	}
}
