// Command transfusion evaluates a Transformer workload on a modelled
// spatial accelerator under one of the five systems from the paper's
// evaluation, printing latency, energy, utilization, and the per-layer
// latency breakdown.
//
// Usage:
//
//	transfusion -arch cloud -model llama3 -seq 65536 -system transfusion
//	transfusion -arch edge -model bert -seq 4096 -compare
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/fusedmindlab/transfusion"
)

func main() {
	// Ctrl-C / SIGTERM cancels the in-flight search and evaluation cleanly
	// (the library aborts within one rollout / schedule candidate).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	archName := flag.String("arch", "cloud", "architecture preset: "+strings.Join(transfusion.ArchNames(), ", "))
	modelName := flag.String("model", "llama3", "workload model: "+strings.Join(transfusion.ModelNames(), ", "))
	seq := flag.Int("seq", 65536, "sequence length (powers of two are safe)")
	system := flag.String("system", "transfusion", "system: "+strings.Join(transfusion.SystemNames(), ", "))
	batch := flag.Int("batch", 0, "batch size (0 = the paper's default of 64)")
	budget := flag.Int("budget", 0, "TileSeek rollout budget (0 = default)")
	compare := flag.Bool("compare", false, "evaluate all five systems and print speedups over Unfused")
	trace := flag.String("trace", "", "render the DPipe schedule Gantt for a sub-layer (qproj, kvproj, mha, ln, ffn)")
	causal := flag.Bool("causal", false, "decoder-style causal masking")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	explain := flag.Bool("explain", false, "print the per-phase roofline anatomy")
	archFile := flag.String("arch-file", "", "load the architecture from a JSON file instead of a preset")
	sweep := flag.Bool("sweep", false, "sweep the 1K-1M sequence range for the chosen system, CSV to stdout")
	searchTimeout := flag.Duration("search-timeout", 0, "soft TileSeek wall-clock bound; on expiry fall back to the heuristic tile and report degraded (0 = none)")
	flag.Parse()

	base := transfusion.RunSpec{
		Arch: *archName, Model: *modelName, SeqLen: *seq, System: *system,
		Batch: *batch, SearchBudget: *budget, Causal: *causal, ArchFile: *archFile,
		SearchTimeout: *searchTimeout,
	}

	if *sweep {
		fmt.Println("seq,cycles,seconds,energy_pj,util2d,util1d")
		for _, n := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
			spec := base
			spec.SeqLen = n
			r, err := transfusion.RunContext(ctx, spec)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%d,%.6g,%.6g,%.6g,%.3f,%.3f\n",
				n, r.Cycles, r.Seconds, r.EnergyPJ.Total(), r.Utilization2D, r.Utilization1D)
		}
		return
	}

	if *explain {
		out, err := transfusion.Explain(base)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	if *trace != "" {
		out, err := transfusion.ScheduleTrace(*archName, *modelName, *seq, *trace, 6, 100)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	if *compare {
		results, err := transfusion.CompareContext(ctx, *archName, *modelName, *seq)
		if err != nil {
			fatal(err)
		}
		unfused := results[0]
		fmt.Printf("%-18s %-12s %-12s %-9s %-8s %-8s %-12s %s\n",
			"system", "cycles", "seconds", "speedup", "2D util", "1D util", "energy (pJ)", "degraded")
		for _, r := range results {
			degraded := "-"
			if r.Degraded {
				degraded = "yes"
			}
			fmt.Printf("%-18s %-12.4g %-12.4g %-9.2f %-8.0f %-8.0f %-12.4g %s\n",
				r.System, r.Cycles, r.Seconds, unfused.Cycles/r.Cycles,
				r.Utilization2D*100, r.Utilization1D*100, r.EnergyPJ.Total(), degraded)
		}
		return
	}

	res, err := transfusion.RunContext(ctx, base)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("system        %s on %s (%s, seq %d, batch %d)\n", res.System, res.Arch, res.Model, res.SeqLen, res.Batch)
	fmt.Printf("latency       %.4g cycles  (%.4g s)\n", res.Cycles, res.Seconds)
	fmt.Printf("utilization   2D %.0f%%   1D %.0f%%\n", res.Utilization2D*100, res.Utilization1D*100)
	fmt.Printf("outer tile    %s\n", res.Tile)
	if res.TileSearchEvals > 0 {
		fmt.Printf("tile search   %d objective evaluations\n", res.TileSearchEvals)
	}
	if res.Degraded {
		fmt.Printf("degraded      %s\n", res.DegradedReason)
	}
	fmt.Printf("DRAM traffic  %.4g bytes\n", res.DRAMBytes)
	e := res.EnergyPJ
	fmt.Printf("energy        %.4g pJ  (DRAM %.0f%%, buffer %.0f%%, RF %.0f%%, PE %.0f%%)\n",
		e.Total(), 100*e.DRAM/e.Total(), 100*e.Buffer/e.Total(), 100*e.RegFile/e.Total(), 100*e.PE/e.Total())
	fmt.Println("per-layer latency share:")
	for _, k := range []string{"QKV", "MHA", "Add&LayerNorm", "FFN"} {
		fmt.Printf("  %-14s %.1f%%\n", k, 100*res.LayerCycles[k]/res.Cycles)
	}
}

func fatal(err error) {
	// Library errors already carry the "transfusion: " package prefix;
	// avoid printing it twice.
	fmt.Fprintln(os.Stderr, "transfusion:", strings.TrimPrefix(err.Error(), "transfusion: "))
	os.Exit(1)
}
