// Command transfusion evaluates a Transformer workload on a modelled
// spatial accelerator under one of the five systems from the paper's
// evaluation, printing latency, energy, utilization, and the per-layer
// latency breakdown.
//
// Usage:
//
//	transfusion -arch cloud -model llama3 -seq 65536 -system transfusion
//	transfusion -arch edge -model bert -seq 4096 -compare
//	transfusion -arch edge -model bert -seq 4096 -progress -metrics-out m.json -trace-out t.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/fusedmindlab/transfusion"
)

func main() {
	// Ctrl-C / SIGTERM cancels the in-flight search and evaluation cleanly
	// (the library aborts within one rollout / schedule candidate).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx)
	stop()
	if err != nil {
		fatal(err)
	}
}

func run(ctx context.Context) error {
	archName := flag.String("arch", "cloud", "architecture preset: "+strings.Join(transfusion.ArchNames(), ", "))
	modelName := flag.String("model", "llama3", "workload model: "+strings.Join(transfusion.ModelNames(), ", "))
	seq := flag.Int("seq", 65536, "sequence length (powers of two are safe)")
	system := flag.String("system", "transfusion", "system: "+strings.Join(transfusion.SystemNames(), ", "))
	batch := flag.Int("batch", 0, "batch size (0 = the paper's default of 64)")
	budget := flag.Int("budget", 0, "TileSeek rollout budget (0 = default)")
	parallelism := flag.Int("parallelism", 0, "worker-pool size for tile search, sub-layer scheduling, and DPipe (0 = GOMAXPROCS, 1 = serial; results are identical at any setting)")
	specChain := flag.Int("spec-chain", 0, "speculation replay steps on the master PRNG stream in the parallel tile search (0 = default; never changes results)")
	specLookahead := flag.Int("spec-lookahead", 0, "total speculation replay steps per snapshot in the parallel tile search (0 = default; never changes results)")
	compare := flag.Bool("compare", false, "evaluate all five systems and print speedups over Unfused")
	trace := flag.String("trace", "", "render the DPipe schedule Gantt for a sub-layer (qproj, kvproj, mha, ln, ffn)")
	causal := flag.Bool("causal", false, "decoder-style causal masking")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	explain := flag.Bool("explain", false, "print the per-phase roofline anatomy")
	archFile := flag.String("arch-file", "", "load the architecture from a JSON file instead of a preset")
	sweep := flag.Bool("sweep", false, "sweep the 1K-1M sequence range for the chosen system, CSV to stdout")
	searchTimeout := flag.Duration("search-timeout", 0, "soft TileSeek wall-clock bound; on expiry fall back to the heuristic tile and report degraded (0 = none)")
	logLevel := flag.String("log-level", "warn", "structured log level on stderr: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (counters/gauges/histograms) to this file on exit")
	traceOut := flag.String("trace-out", "", "write the DPipe schedules of all sub-layers as Chrome trace_event JSON (load in Perfetto / chrome://tracing)")
	progress := flag.Bool("progress", false, "stream search progress to stderr (rollout ticker, phase markers)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	level, err := transfusion.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	ctx = transfusion.WithLogger(ctx, transfusion.NewLogger(os.Stderr, level, *logJSON))
	metrics := transfusion.NewMetrics()
	ctx = transfusion.WithMetrics(ctx, metrics)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "transfusion:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "transfusion:", err)
			}
		}()
	}
	if *metricsOut != "" {
		defer func() {
			snap := metrics.Snapshot()
			data, err := snap.JSON()
			if err == nil {
				err = os.WriteFile(*metricsOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "transfusion:", err)
			}
		}()
	}

	base := transfusion.RunSpec{
		Arch: *archName, Model: *modelName, SeqLen: *seq, System: *system,
		Batch: *batch, SearchBudget: *budget, Causal: *causal, ArchFile: *archFile,
		SearchTimeout: *searchTimeout, Parallelism: *parallelism,
		SpecChainSteps: *specChain, SpecLookahead: *specLookahead,
	}
	if *progress {
		base.Progress = progressPrinter(os.Stderr)
	}

	if *traceOut != "" {
		data, err := transfusion.ChromeTraceSchedule(*archName, *modelName, *seq, 6)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "transfusion: wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", *traceOut)
	}

	if *sweep {
		fmt.Println("seq,cycles,seconds,energy_pj,util2d,util1d")
		for _, n := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
			spec := base
			spec.SeqLen = n
			r, err := transfusion.RunContext(ctx, spec)
			if err != nil {
				return err
			}
			fmt.Printf("%d,%.6g,%.6g,%.6g,%.3f,%.3f\n",
				n, r.Cycles, r.Seconds, r.EnergyPJ.Total(), r.Utilization2D, r.Utilization1D)
		}
		return nil
	}

	if *explain {
		out, err := transfusion.Explain(base)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	if *trace != "" {
		out, err := transfusion.ScheduleTrace(*archName, *modelName, *seq, *trace, 6, 100)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	if *compare {
		// Evaluate each system through the same base spec (rather than
		// CompareContext) so the progress hook and metrics follow along.
		results := make([]transfusion.RunResult, 0, 5)
		for _, name := range transfusion.SystemNames() {
			spec := base
			spec.System = name
			r, err := transfusion.RunContext(ctx, spec)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		unfused := results[0]
		fmt.Printf("%-18s %-12s %-12s %-9s %-8s %-8s %-12s %s\n",
			"system", "cycles", "seconds", "speedup", "2D util", "1D util", "energy (pJ)", "degraded")
		for _, r := range results {
			degraded := "-"
			if r.Degraded {
				degraded = "yes"
			}
			fmt.Printf("%-18s %-12.4g %-12.4g %-9.2f %-8.0f %-8.0f %-12.4g %s\n",
				r.System, r.Cycles, r.Seconds, unfused.Cycles/r.Cycles,
				r.Utilization2D*100, r.Utilization1D*100, r.EnergyPJ.Total(), degraded)
		}
		return nil
	}

	res, err := transfusion.RunContext(ctx, base)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("system        %s on %s (%s, seq %d, batch %d)\n", res.System, res.Arch, res.Model, res.SeqLen, res.Batch)
	fmt.Printf("latency       %.4g cycles  (%.4g s)\n", res.Cycles, res.Seconds)
	fmt.Printf("utilization   2D %.0f%%   1D %.0f%%\n", res.Utilization2D*100, res.Utilization1D*100)
	fmt.Printf("outer tile    %s\n", res.Tile)
	if res.TileSearchEvals > 0 {
		fmt.Printf("tile search   %d objective evaluations\n", res.TileSearchEvals)
	}
	if res.Degraded {
		fmt.Printf("degraded      %s\n", res.DegradedReason)
	}
	fmt.Printf("DRAM traffic  %.4g bytes\n", res.DRAMBytes)
	e := res.EnergyPJ
	fmt.Printf("energy        %.4g pJ  (DRAM %.0f%%, buffer %.0f%%, RF %.0f%%, PE %.0f%%)\n",
		e.Total(), 100*e.DRAM/e.Total(), 100*e.Buffer/e.Total(), 100*e.RegFile/e.Total(), 100*e.PE/e.Total())
	fmt.Println("per-layer latency share:")
	for _, k := range []string{"QKV", "MHA", "Add&LayerNorm", "FFN"} {
		fmt.Printf("  %-14s %.1f%%\n", k, 100*res.LayerCycles[k]/res.Cycles)
	}
	return nil
}

// progressPrinter streams search progress to w: phase markers, a rollout
// ticker throttled to roughly five lines a second, and degradations. It runs
// synchronously on the evaluating goroutine, so it stays cheap.
func progressPrinter(w *os.File) transfusion.ProgressFunc {
	var last time.Time
	return func(ev transfusion.ProgressEvent) {
		switch e := ev.(type) {
		case transfusion.RolloutDoneEvent:
			if e.Iteration < e.Budget && time.Since(last) < 200*time.Millisecond {
				return
			}
			last = time.Now()
			best := "-"
			if e.Found {
				best = fmt.Sprintf("%.4g", e.BestCost)
			}
			fmt.Fprintf(w, "tileseek  rollout %d/%d  best %s cycles  (%d node visits)\n",
				e.Iteration, e.Budget, best, e.Visits)
		case transfusion.PhaseStartEvent:
			fmt.Fprintf(w, "phase     %s start\n", e.Phase)
		case transfusion.PhaseEndEvent:
			fmt.Fprintf(w, "phase     %s done in %s\n", e.Phase, e.Duration.Round(time.Millisecond))
		case transfusion.DegradedEvent:
			fmt.Fprintf(w, "degraded  %s\n", e.Reason)
		}
	}
}

func fatal(err error) {
	// Library errors already carry the "transfusion: " package prefix;
	// avoid printing it twice.
	fmt.Fprintln(os.Stderr, "transfusion:", strings.TrimPrefix(err.Error(), "transfusion: "))
	os.Exit(1)
}
