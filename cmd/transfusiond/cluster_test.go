package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/cluster"
)

// The cluster lifecycle test drives three real daemon binaries joined by
// -peers/-self through the sharded-cache contract:
//
//	healthy   concurrent identical requests through all three replicas run
//	          exactly one tile search cluster-wide (the key's ring owner),
//	          every answer bit-identical;
//	SIGKILL   the owner dies without warning; surviving replicas keep
//	          serving its keys by local fallback search — no errors, and
//	          the fallbacks are visible in serve.peer.fallbacks.

// freePorts reserves n distinct loopback ports by binding them all at once,
// then releasing them. The tiny close-to-reuse race is acceptable in tests.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	listeners := make([]net.Listener, n)
	ports := make([]int, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		ports[i] = l.Addr().(*net.TCPAddr).Port
	}
	for _, l := range listeners {
		l.Close()
	}
	return ports
}

func TestClusterDaemonsShareOneSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	ports := freePorts(t, 3)
	urls := make([]string, 3)
	for i, p := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	peers := strings.Join(urls, ",")

	daemons := make([]*daemon, 3)
	for i := range daemons {
		daemons[i] = startDaemon(t,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-self", urls[i],
			"-peers", peers,
			"-peer-timeout", "5s")
	}

	// The test computes ownership with the same ring the daemons build from
	// -peers, so it can name the one replica allowed to search.
	ring, err := cluster.New(cluster.Config{Self: urls[0], Peers: urls})
	if err != nil {
		t.Fatal(err)
	}
	specFor := func(ownerIdx int) (string, string) {
		for seq := 256; seq <= 64*1024; seq += 256 {
			key := transfusion.RunSpec{
				Arch: "edge", Model: "bert", SeqLen: seq, System: "transfusion", SearchBudget: 4,
			}.CanonicalKey()
			if ring.Owner(key) == urls[ownerIdx] {
				return fmt.Sprintf(`{"arch":"edge","model":"bert","seq_len":%d,"system":"transfusion","search_budget":4}`, seq), key
			}
		}
		t.Fatalf("no spec owned by replica %d", ownerIdx)
		return "", ""
	}

	body, key := specFor(0)

	// Concurrent identical requests through every replica.
	type outcome struct {
		status int
		body   string
		err    error
	}
	const perReplica = 3
	outcomes := make(chan outcome, perReplica*3)
	var wg sync.WaitGroup
	for i := range daemons {
		for j := 0; j < perReplica; j++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				resp, err := http.Post(url+"/v1/plan", "application/json", strings.NewReader(body))
				if err != nil {
					outcomes <- outcome{err: err}
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				outcomes <- outcome{status: resp.StatusCode, body: string(data)}
			}(daemons[i].url)
		}
	}
	wg.Wait()
	close(outcomes)
	for o := range outcomes {
		if o.err != nil {
			t.Fatalf("request failed: %v", o.err)
		}
		if o.status != http.StatusOK {
			t.Fatalf("status %d: %s", o.status, o.body)
		}
	}

	// Exactly one search, and it ran on the ring's owner.
	var searches int64
	for i, d := range daemons {
		n := d.metric(t, "tileseek.searches")
		searches += n
		if n > 0 && urls[i] != ring.Owner(key) {
			t.Fatalf("replica %d searched but does not own %s", i, key)
		}
	}
	if searches != 1 {
		t.Fatalf("cluster ran %d searches, want exactly 1", searches)
	}

	// Every replica answers the identical result once warm.
	ref, _ := daemons[0].plan(t, body)
	for i, d := range daemons {
		got, _ := d.plan(t, body)
		if !reflect.DeepEqual(got.Result, ref.Result) {
			t.Fatalf("replica %d diverged:\ngot  %+v\nwant %+v", i, got.Result, ref.Result)
		}
	}

	// SIGKILL replica 2 and request one of its keys through the survivors:
	// service continues by local fallback, never an error.
	victimBody, _ := specFor(2)
	if err := daemons[2].cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemons[2].cmd.Wait() //nolint:errcheck

	for _, i := range []int{0, 1} {
		got, source := daemons[i].plan(t, victimBody)
		if source == "peer" {
			t.Fatalf("replica %d claims a peer answer from a SIGKILLed owner", i)
		}
		if got.Result.Plan == nil {
			t.Fatalf("replica %d fallback returned no plan", i)
		}
	}
	if fb := daemons[0].metric(t, "serve.peer.fallbacks"); fb < 1 {
		t.Fatalf("serve.peer.fallbacks = %d, want >= 1 after owner death", fb)
	}
	// Survivors answer bit-identically to each other for the fallen owner's
	// key (each searched locally — duplicated work, not divergent results).
	a, _ := daemons[0].plan(t, victimBody)
	b, _ := daemons[1].plan(t, victimBody)
	if !reflect.DeepEqual(a.Result, b.Result) {
		t.Fatal("survivors diverged on the dead owner's key")
	}
}
