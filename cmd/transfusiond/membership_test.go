package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The membership-churn test drives real daemon processes through a live
// reconfiguration: three replicas share one -peers-file; the file is edited
// to drop one replica and admit a newly started one; SIGHUP makes the
// survivors reload it; the dropped replica is then SIGKILLed. Throughout,
// every request on a current member answers 200, the survivors' ring
// generation bumps exactly once (back-to-back identical SIGHUPs coalesce),
// and the membership gauges track the new three-member set.
func TestDaemonPeersFileMembershipChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	ports := freePorts(t, 4)
	urls := make([]string, 4)
	for i, p := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}

	peersFile := filepath.Join(t.TempDir(), "peers.txt")
	writePeers := func(members ...string) {
		t.Helper()
		body := "# transfusiond membership\n" + strings.Join(members, "\n") + "\n"
		if err := os.WriteFile(peersFile, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writePeers(urls[0], urls[1], urls[2])

	boot := func(i int) *daemon {
		return startDaemon(t,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-self", urls[i],
			"-peers-file", peersFile,
			"-peer-timeout", "5s",
			"-probe-interval", "50ms",
			"-probe-timeout", "2s",
			"-probe-suspect", "2",
			"-probe-dead", "3",
			"-probe-revive", "2")
	}
	daemons := make([]*daemon, 3)
	for i := range daemons {
		daemons[i] = boot(i)
	}

	const body = `{"arch":"edge","model":"bert","seq_len":1024,"system":"transfusion","search_budget":4}`
	for _, d := range daemons {
		d.plan(t, body) // plan() fails the test on any non-200
	}
	for i, d := range daemons {
		if g := d.metric(t, "cluster.ring.generation"); g != 1 {
			t.Fatalf("daemon %d boots at generation %d, want 1", i, g)
		}
	}

	// Churn: the peers file drops replica 2 and admits replica 3, which
	// boots against the new file; the incumbents learn via SIGHUP.
	writePeers(urls[0], urls[1], urls[3])
	joiner := boot(3)
	for _, d := range daemons[:2] {
		if err := d.cmd.Process.Signal(syscall.SIGHUP); err != nil {
			t.Fatal(err)
		}
	}
	waitGen := func(d *daemon, want int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for d.metric(t, "cluster.ring.generation") != want {
			if time.Now().After(deadline) {
				t.Fatalf("generation never reached %d; stderr:\n%s", want, d.stderr.String())
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	for _, d := range daemons[:2] {
		waitGen(d, 2)
	}

	// Two more SIGHUPs with the unchanged file must coalesce: no rebuild,
	// no generation bump.
	for i := 0; i < 2; i++ {
		if err := daemons[0].cmd.Process.Signal(syscall.SIGHUP); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	if g := daemons[0].metric(t, "cluster.ring.generation"); g != 2 {
		t.Fatalf("identical SIGHUPs bumped generation to %d, want 2", g)
	}

	// The dropped replica dies for real. Current members keep answering —
	// the removed corpse costs nobody anything.
	if err := daemons[2].cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemons[2].cmd.Wait() //nolint:errcheck

	for _, d := range []*daemon{daemons[0], daemons[1], joiner} {
		d.plan(t, body)
		d.plan(t, `{"arch":"edge","model":"bert","seq_len":2048,"system":"transfusion","search_budget":4}`)
	}
	if alive := daemons[0].metric(t, "cluster.member.alive"); alive != 3 {
		t.Fatalf("cluster.member.alive = %d after churn, want 3", alive)
	}
	if dead := daemons[0].metric(t, "cluster.member.dead"); dead != 0 {
		t.Fatalf("cluster.member.dead = %d after churn, want 0", dead)
	}
}
