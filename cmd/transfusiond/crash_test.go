package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/store"
)

// The kill-mid-write crash test drives the real daemon binary through the
// persistence lifecycle the store exists for:
//
//	daemon A  plans two specs cleanly, drains on SIGTERM (fills committed);
//	daemon B  plans a third spec under injected fsync latency and is
//	          SIGKILLed with the store write torn mid-flight;
//	          one of A's committed records is then bit-flipped on disk;
//	daemon C  boots over the wreckage: the torn temp is swept
//	          (store.recovered), the corrupt record quarantined — renamed
//	          aside, never deleted — (store.quarantined), the surviving
//	          record loads and serves from disk bit-identically, and the
//	          corrupted spec recomputes to the same answer instead of ever
//	          serving bad bytes.

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func daemonBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "transfusiond-bin-")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "transfusiond")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("building daemon: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// daemon is one running transfusiond process under test.
type daemon struct {
	cmd    *exec.Cmd
	url    string
	stderr *strings.Builder
}

// startDaemon launches the binary on a kernel-assigned port and waits for the
// "listening" log line (and readiness) before returning.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{stderr: &strings.Builder{}}
	d.cmd = exec.Command(daemonBinary(t), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill() //nolint:errcheck
			d.cmd.Wait()         //nolint:errcheck
		}
	})

	// The daemon logs its bound address as an addr=HOST:PORT token on the
	// "listening" line; everything on stderr is also kept for failure output.
	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.stderr.WriteString(line + "\n")
			if strings.Contains(line, "listening") {
				for _, tok := range strings.Fields(line) {
					if a, ok := strings.CutPrefix(tok, "addr="); ok {
						select {
						case addrC <- a:
						default:
						}
					}
				}
			}
		}
	}()
	select {
	case a := <-addrC:
		d.url = "http://" + a
	case <-time.After(20 * time.Second):
		t.Fatalf("daemon never logged its address; stderr:\n%s", d.stderr.String())
	}
	for deadline := time.Now().Add(10 * time.Second); ; {
		resp, err := http.Get(d.url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready; stderr:\n%s", d.stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	return d
}

// stop signals the daemon and waits for a clean exit (the drain path).
func (d *daemon) stop(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := d.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("daemon did not exit after %v; stderr:\n%s", sig, d.stderr.String())
	}
}

// plan posts body to /v1/plan and decodes the 200 reply, returning the
// response and the X-Plan-Source header.
func (d *daemon) plan(t *testing.T, body string) (serveResp, string) {
	t.Helper()
	resp, err := http.Post(d.url+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("plan request: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", resp.StatusCode, data)
	}
	var pr serveResp
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	return pr, resp.Header.Get("X-Plan-Source")
}

// serveResp mirrors the serve.PlanResponse fields this test reads.
type serveResp struct {
	Result transfusion.RunResult `json:"result"`
	Key    string                `json:"key"`
	Source string                `json:"source"`
}

// metric fetches one named value from /metrics.
func (d *daemon) metric(t *testing.T, name string) int64 {
	t.Helper()
	resp, err := http.Get(d.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("unparsable metric line %q", line)
			}
			return v
		}
	}
	return 0
}

func TestKillMidWriteRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	dir := t.TempDir()
	const (
		spec1 = `{"arch":"edge","model":"bert","seq_len":1024,"system":"transfusion","search_budget":8}`
		spec2 = `{"arch":"edge","model":"bert","seq_len":2048,"system":"unfused"}`
		spec3 = `{"arch":"edge","model":"bert","seq_len":4096,"system":"unfused"}`
	)

	// Daemon A: plan two specs cleanly; SIGTERM drains the fills to disk.
	a := startDaemon(t, "-store-dir", dir, "-request-timeout", "120s")
	res1, src := a.plan(t, spec1)
	if src != "search" {
		t.Fatalf("daemon A first plan source %q, want search", src)
	}
	res2, _ := a.plan(t, spec2)
	a.stop(t, syscall.SIGTERM)
	if ents, _ := filepath.Glob(filepath.Join(dir, "*.plan")); len(ents) != 2 {
		t.Fatalf("daemon A committed %d records, want 2; stderr:\n%s", len(ents), a.stderr.String())
	}

	// Daemon B: injected fsync latency holds spec3's store write open with a
	// full temp file on disk — SIGKILL lands exactly mid-write.
	b := startDaemon(t, "-store-dir", dir,
		"-chaos", "store.fsync=latency:120s@every=1", "-chaos-seed", "7",
		"-request-timeout", "300s")
	if _, src := b.plan(t, spec1); src != "memory" && src != "disk" {
		t.Fatalf("daemon B re-plan of spec1 source %q, want a cache tier", src)
	}
	b.plan(t, spec3) // the fill behind this hangs at the injected fsync
	torn := ""
	for deadline := time.Now().Add(15 * time.Second); torn == ""; {
		if tmps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*")); len(tmps) > 0 {
			torn = tmps[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no torn temp file appeared; stderr:\n%s", b.stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := b.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no cleanup
		t.Fatal(err)
	}
	b.cmd.Wait() //nolint:errcheck
	if _, err := os.Stat(torn); err != nil {
		t.Fatalf("torn temp file vanished with the SIGKILL: %v", err)
	}

	// Corrupt spec2's committed record — the bit-rot / torn-sector case.
	spec2File := filepath.Join(dir, store.FileName(res2.Key))
	data, err := os.ReadFile(spec2File)
	if err != nil {
		t.Fatalf("reading spec2's record (key %q): %v", res2.Key, err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(spec2File, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Daemon C: cold restart over the wreckage (-store-warm=false keeps the
	// memory cache empty so the disk tier is observable on the wire).
	c := startDaemon(t, "-store-dir", dir, "-store-warm=false", "-request-timeout", "120s")
	if got := c.metric(t, "store.loaded"); got != 1 {
		t.Fatalf("store.loaded = %d, want 1 (only spec1 survived); stderr:\n%s", got, c.stderr.String())
	}
	if got := c.metric(t, "store.recovered"); got != 1 {
		t.Fatalf("store.recovered = %d, want 1 (the torn temp)", got)
	}
	if got := c.metric(t, "store.quarantined"); got < 1 {
		t.Fatalf("store.quarantined = %d, want >= 1 (the corrupted record)", got)
	}

	// Quarantine means renamed aside, never deleted.
	if _, err := os.Stat(spec2File); !os.IsNotExist(err) {
		t.Fatal("corrupted record still at its live name after recovery")
	}
	q, _ := os.ReadDir(filepath.Join(dir, store.QuarantineDir))
	if len(q) < 2 { // the torn temp and the corrupt record
		t.Fatalf("quarantine holds %d files, want >= 2", len(q))
	}

	// The surviving record serves from disk, bit-identical to daemon A's
	// answer, with no re-search.
	got1, src := c.plan(t, spec1)
	if src != "disk" {
		t.Fatalf("recovered spec1 served from %q, want disk", src)
	}
	if got1.Result.Cycles != res1.Result.Cycles || got1.Result.Tile != res1.Result.Tile ||
		got1.Result.TileSearchEvals != res1.Result.TileSearchEvals {
		t.Fatalf("disk-served plan diverged from the original:\ngot  %+v\nwant %+v", got1.Result, res1.Result)
	}

	// The corrupted spec is recomputed — a clean miss, never quarantine-served
	// bytes — and lands on the same answer as before the corruption.
	got2, src := c.plan(t, spec2)
	if src != "search" {
		t.Fatalf("corrupted spec2 served from %q, want search (recomputed)", src)
	}
	if got2.Result.Cycles != res2.Result.Cycles || got2.Result.Tile != res2.Result.Tile {
		t.Fatalf("recomputed plan diverged:\ngot  %+v\nwant %+v", got2.Result, res2.Result)
	}
	c.stop(t, syscall.SIGTERM)
}

// CanonicalKey must agree between the client-visible response and the store's
// file naming — the bridge the crash test's corruption step depends on.
func TestResponseKeyMatchesStoreFileName(t *testing.T) {
	spec := transfusion.RunSpec{Arch: "edge", Model: "bert", SeqLen: 2048, System: "unfused"}
	name := store.FileName(spec.CanonicalKey())
	if !strings.HasSuffix(name, ".plan") || len(name) != 64+len(".plan") {
		t.Fatalf("unexpected record name %q", name)
	}
}
