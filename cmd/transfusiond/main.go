// Command transfusiond serves the TransFusion analytical model over HTTP:
// plan evaluations (POST /v1/plan), five-system comparisons (POST
// /v1/compare), liveness (GET /healthz), readiness (GET /readyz), metrics
// (GET /metrics, JSON / plain text / Prometheus under content negotiation),
// DPipe schedule traces (GET /debug/trace), and request traces (GET
// /debug/requests: recent, in-flight, and tail-sampled span trees; ?id= for
// one trace, &format=chrome for a Perfetto-loadable export). Every response
// carries X-Trace-Id; inbound W3C traceparent headers are adopted. Identical
// requests are answered from an LRU plan cache with singleflight coalescing.
// Overload steps requests down a degradation ladder (reduced search budget,
// then heuristic-tile-only) before shedding with 503 + a computed
// Retry-After; a watchdog converts stuck evaluations into degraded answers.
// SIGTERM flips /readyz to draining, waits -ready-delay, then drains
// in-flight plans before exiting. With -store-dir, completed plans are
// persisted to a crash-safe disk store and a restarted daemon warm-starts
// from them (X-Plan-Source reports which tier answered). A request missing
// both cache tiers is warm-started from the nearest stored plan of the same
// workload family (X-Plan-Source: warm-search), and -warm-grid precomputes
// plans for gaps in the stored seq-length grid at boot. With -peers/-self,
// replicas shard the plan-key space over a consistent-hash ring: a replica
// that misses locally fetches from the key's owner (X-Plan-Source: peer), so
// the owner's singleflight computes each plan once cluster-wide; an
// unreachable or degraded owner falls back to a local search. POST
// /v1/plan/batch resolves many plan requests in one round trip with
// per-entry status and source. With -peers-file, membership is dynamic: the
// file is re-read on SIGHUP, an active prober walks unresponsive peers
// through alive -> suspect -> dead (dead members leave the ring; revived
// ones rejoin), and a key whose ownership moved is first fetched — cache-
// only, one hop — from its previous owner before being re-searched.
//
// Usage:
//
//	transfusiond -addr :8080
//	curl -s localhost:8080/v1/plan -d '{"arch":"edge","model":"bert","seq_len":4096,"system":"transfusion"}'
//
// For resilience testing, -chaos injects deterministic faults at named sites:
//
//	transfusiond -chaos 'serve.cache.leader=latency:2s@every=5' -chaos-seed 42
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/cluster"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/serve"
	"github.com/fusedmindlab/transfusion/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "transfusiond:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 4, "maximum simultaneous evaluations")
	maxQueue := flag.Int("max-queue", 64, "maximum callers waiting for an evaluation slot before shedding with 503")
	requestTimeout := flag.Duration("request-timeout", 60*time.Second, "server-owned evaluation deadline (expiry answers 504)")
	cacheEntries := flag.Int("cache-entries", 1024, "plan cache capacity (completed results)")
	maxSeq := flag.Int("max-seq", transfusion.MaxSeqLen, "largest sequence length accepted over the API")
	maxBudget := flag.Int("max-budget", 1024, "largest per-request TileSeek rollout budget accepted")
	parallelism := flag.Int("parallelism", 0, "per-evaluation worker-pool size (0 = GOMAXPROCS; results identical at any setting)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound for in-flight plans")
	reducedBudget := flag.Int("reduced-budget", 16, "search budget cap under the degradation ladder's middle tier")
	watchdogTimeout := flag.Duration("watchdog", 0, "wait before the watchdog serves a degraded answer for a stuck evaluation (0 = half the request timeout, negative disables)")
	readyDelay := flag.Duration("ready-delay", 0, "pause between flipping /readyz to draining and closing the listener on shutdown")
	storeDir := flag.String("store-dir", "", "directory for the durable plan store (empty disables the disk tier)")
	storeMaxBytes := flag.Int64("store-max-bytes", 256<<20, "byte budget for the plan store directory, LRU-evicted (<= 0 unlimited)")
	storeWarm := flag.Bool("store-warm", true, "seed the in-memory plan cache from the store at startup (warm restart)")
	warmGrid := flag.Bool("warm-grid", false, "precompute plans for gaps in the store's seq-length grid at startup, warm-seeded from their nearest stored neighbours (requires -store-dir; runs off the serving path)")
	specChain := flag.Int("spec-chain", 0, "speculation replay steps on the master PRNG stream in the parallel tile search (0 = default; never changes results)")
	specLookahead := flag.Int("spec-lookahead", 0, "total speculation replay steps per snapshot in the parallel tile search (0 = default; never changes results)")
	peers := flag.String("peers", "", "comma-separated base URLs of every replica, self included (e.g. 'http://a:8080,http://b:8080'; empty disables clustering)")
	peersFile := flag.String("peers-file", "", "file listing replica base URLs, one per line (# comments allowed; alternative to -peers, re-read on SIGHUP for live membership changes)")
	self := flag.String("self", "", "this replica's own base URL, exactly as listed in -peers (required with -peers)")
	peerVNodes := flag.Int("peer-vnodes", 0, "virtual nodes per replica on the consistent-hash ring (0 = default)")
	peerTimeout := flag.Duration("peer-timeout", 0, "bound on one peer plan fetch before falling back to local search (0 = default; clamped per-peer by the prober's latency EWMA)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "base gap between health probes of one peer, jittered per probe (0 disables the prober: membership stays static)")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "bound on one health probe round-trip")
	probeSuspect := flag.Int("probe-suspect", 2, "consecutive probe failures before a peer is suspect (kept in the ring, clamped fetch timeout)")
	probeDead := flag.Int("probe-dead", 4, "consecutive probe failures before a peer is dead and leaves the ring")
	probeRevive := flag.Int("probe-revive", 2, "consecutive probe successes before a suspect or dead peer is alive again")
	chaosSpec := flag.String("chaos", "", "fault-injection schedule, e.g. 'serve.cache.leader=latency:2s@every=5;serve.admission=error@p=0.01' (empty disables)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for probabilistic -chaos schedules (deterministic replay)")
	logLevel := flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty disables; never exposed on the serving port)")
	traceRing := flag.Int("trace-ring", 64, "request traces retained for /debug/requests, recent and tail-sampled rings each (0 disables tracing entirely)")
	traceSlow := flag.Duration("trace-slow", time.Second, "latency at or above which a trace is always retained by tail sampling")
	flag.Parse()

	level, err := transfusion.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := transfusion.NewLogger(os.Stderr, level, *logJSON)

	// SIGTERM/SIGINT starts the drain: readyz flips to draining, ready-delay
	// later the listener closes, and in-flight plans get drain-timeout to
	// finish. Liveness (healthz) stays OK throughout.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = transfusion.WithLogger(ctx, logger)
	if *chaosSpec != "" {
		inj, err := chaos.Parse(*chaosSpec, *chaosSeed)
		if err != nil {
			return err
		}
		ctx = chaos.With(ctx, inj)
		logger.Warn("transfusiond: fault injection armed", "schedule", *chaosSpec, "seed", *chaosSeed)
	}
	metrics := transfusion.NewMetrics()

	// Runtime health gauges (goroutines, heap, GC pauses) ride the ordinary
	// /metrics exposition; one sample every 10s is plenty for a scraper and
	// costs one ReadMemStats.
	sampler := obs.StartRuntimeSampler(metrics, 10*time.Second)
	defer sampler.Stop()

	var tracer *obs.Tracer
	if *traceRing > 0 {
		tracer = obs.NewTracer(obs.TracerConfig{
			Capacity:       *traceRing,
			RetainCapacity: *traceRing,
			SlowThreshold:  *traceSlow,
		})
	}

	if *debugAddr != "" {
		// pprof gets its own listener so profiling is reachable under
		// overload (it skips admission control) and is never exposed on the
		// serving address. The handlers are registered explicitly on a
		// private mux — nothing here depends on http.DefaultServeMux.
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Handler: dmux}
		go dsrv.Serve(dl)
		defer dsrv.Close()
		logger.Info("transfusiond: debug listener up (pprof)", "addr", dl.Addr().String())
	}

	var planStore *store.Store
	if *storeDir != "" {
		// Open runs the recovery scan: checksums verified, torn temp files
		// and corrupt records quarantined (renamed aside, never deleted).
		planStore, err = store.Open(*storeDir, *storeMaxBytes, metrics)
		if err != nil {
			return err
		}
		logger.Info("transfusiond: plan store open",
			"dir", *storeDir,
			"loaded", metrics.Counter("store.loaded").Value(),
			"recovered", metrics.Counter("store.recovered").Value(),
			"quarantined", metrics.Counter("store.quarantined").Value(),
			"bytes", planStore.SizeBytes(),
			"warm", *storeWarm)
	}

	var clust *cluster.Cluster
	if *peers != "" || *peersFile != "" {
		if *peers != "" && *peersFile != "" {
			return fmt.Errorf("-peers and -peers-file are mutually exclusive")
		}
		if *self == "" {
			return fmt.Errorf("-peers/-peers-file requires -self")
		}
		var list []string
		if *peersFile != "" {
			list, err = readPeersFile(*peersFile)
			if err != nil {
				return err
			}
			if len(list) == 0 {
				// An empty peers file is single-node mode, not an error: the
				// file is the live membership source and may legitimately
				// shrink to just this replica.
				list = []string{*self}
			}
		} else {
			for _, p := range strings.Split(*peers, ",") {
				if p = strings.TrimSpace(p); p != "" {
					list = append(list, p)
				}
			}
		}
		clust, err = cluster.New(cluster.Config{
			Self:         *self,
			Peers:        list,
			VNodes:       *peerVNodes,
			FetchTimeout: *peerTimeout,
			Metrics:      metrics,
			Probe: cluster.ProbeConfig{
				Interval:     *probeInterval,
				Timeout:      *probeTimeout,
				SuspectAfter: *probeSuspect,
				DeadAfter:    *probeDead,
				ReviveAfter:  *probeRevive,
				Seed:         *chaosSeed,
			},
			OnChange: func(gen uint64, members []string) {
				logger.Info("transfusiond: cluster ring rebuilt",
					"generation", gen,
					"members", strings.Join(members, ","))
			},
		})
		if err != nil {
			return err
		}
		logger.Info("transfusiond: clustering enabled",
			"self", clust.Self(),
			"members", len(clust.Members()),
			"peers_file", *peersFile)
		if *probeInterval > 0 {
			prober := clust.StartProber(ctx)
			defer prober.Stop()
		}
		if *peersFile != "" {
			// SIGHUP re-reads the peers file and reconfigures the ring live.
			// The channel buffer of 1 coalesces back-to-back signals: a burst
			// of SIGHUPs converges on one reload of the file's final content.
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			defer signal.Stop(hup)
			go func() {
				for {
					select {
					case <-ctx.Done():
						return
					case <-hup:
					}
					list, err := readPeersFile(*peersFile)
					if err != nil {
						logger.Error("transfusiond: peers file reload failed; keeping current ring", "err", err)
						continue
					}
					if err := clust.Reload(list); err != nil {
						logger.Error("transfusiond: peers reload rejected; keeping current ring", "err", err)
						continue
					}
					logger.Info("transfusiond: peers file reloaded",
						"peers", len(clust.Peers()),
						"generation", clust.Generation())
				}
			}()
		}
	}

	srv := serve.New(serve.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		RequestTimeout:  *requestTimeout,
		CacheEntries:    *cacheEntries,
		MaxSeqLen:       *maxSeq,
		MaxSearchBudget: *maxBudget,
		Parallelism:     *parallelism,
		SpecChainSteps:  *specChain,
		SpecLookahead:   *specLookahead,
		DrainTimeout:    *drainTimeout,
		ReducedBudget:   *reducedBudget,
		WatchdogTimeout: *watchdogTimeout,
		ReadyDelay:      *readyDelay,
		Store:           planStore,
		ColdStart:       !*storeWarm,
		Tracer:          tracer,
		Cluster:         clust,
	}, metrics, ctx)

	if *warmGrid {
		if planStore == nil {
			return fmt.Errorf("-warm-grid requires -store-dir")
		}
		go func() {
			n := srv.WarmGrid(ctx, 0)
			logger.Info("transfusiond: warm grid precompute done", "plans", n)
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("transfusiond: listening",
		"addr", l.Addr().String(),
		"max_concurrent", *maxConcurrent,
		"max_queue", *maxQueue,
		"cache_entries", *cacheEntries)
	err = srv.Serve(ctx, l)
	logger.Info("transfusiond: drained, exiting")
	return err
}

// readPeersFile parses a peers file: one replica base URL per line, blank
// lines and #-comments ignored. An empty result is legal — the caller
// decides whether that means single-node mode (boot, reload) or an error.
func readPeersFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading peers file: %w", err)
	}
	var list []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			list = append(list, line)
		}
	}
	return list, nil
}
