// Command transfusiond serves the TransFusion analytical model over HTTP:
// plan evaluations (POST /v1/plan), five-system comparisons (POST
// /v1/compare), health (GET /healthz), metrics (GET /metrics), and DPipe
// schedule traces (GET /debug/trace). Identical requests are answered from an
// LRU plan cache with singleflight coalescing; overload is shed with 503 +
// Retry-After instead of queueing unbounded; SIGTERM drains in-flight plans
// before exiting.
//
// Usage:
//
//	transfusiond -addr :8080
//	curl -s localhost:8080/v1/plan -d '{"arch":"edge","model":"bert","seq_len":4096,"system":"transfusion"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "transfusiond:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 4, "maximum simultaneous evaluations")
	maxQueue := flag.Int("max-queue", 64, "maximum callers waiting for an evaluation slot before shedding with 503")
	requestTimeout := flag.Duration("request-timeout", 60*time.Second, "server-owned evaluation deadline (expiry answers 504)")
	cacheEntries := flag.Int("cache-entries", 1024, "plan cache capacity (completed results)")
	maxSeq := flag.Int("max-seq", transfusion.MaxSeqLen, "largest sequence length accepted over the API")
	maxBudget := flag.Int("max-budget", 1024, "largest per-request TileSeek rollout budget accepted")
	parallelism := flag.Int("parallelism", 0, "per-evaluation worker-pool size (0 = GOMAXPROCS; results identical at any setting)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound for in-flight plans")
	logLevel := flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
	flag.Parse()

	level, err := transfusion.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := transfusion.NewLogger(os.Stderr, level, *logJSON)

	// SIGTERM/SIGINT starts the drain: healthz flips to draining, the
	// listener closes, and in-flight plans get drain-timeout to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = transfusion.WithLogger(ctx, logger)
	metrics := transfusion.NewMetrics()

	srv := serve.New(serve.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		RequestTimeout:  *requestTimeout,
		CacheEntries:    *cacheEntries,
		MaxSeqLen:       *maxSeq,
		MaxSearchBudget: *maxBudget,
		Parallelism:     *parallelism,
		DrainTimeout:    *drainTimeout,
	}, metrics, ctx)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("transfusiond: listening",
		"addr", l.Addr().String(),
		"max_concurrent", *maxConcurrent,
		"max_queue", *maxQueue,
		"cache_entries", *cacheEntries)
	err = srv.Serve(ctx, l)
	logger.Info("transfusiond: drained, exiting")
	return err
}
