package transfusion_test

import (
	"fmt"
	"log"

	"github.com/fusedmindlab/transfusion"
)

// Running one system on one workload/architecture.
func ExampleRun() {
	res, err := transfusion.Run(transfusion.RunSpec{
		Arch:   "edge",
		Model:  "bert",
		SeqLen: 4096,
		System: "fusemax",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Arch, res.Model, res.System, res.Cycles > 0)
	// Output: edge bert fusemax true
}

// The streaming 1-pass attention cascade is numerically identical to naive
// softmax attention for any inner tile size.
func ExampleRunStreamingAttention() {
	q, _ := transfusion.RandTensor(1, "h", 2, "e", 8, "p", 4)
	k, _ := transfusion.RandTensor(2, "h", 2, "e", 8, "m", 16)
	v, _ := transfusion.RandTensor(3, "h", 2, "f", 8, "m", 16)

	streaming, err := transfusion.RunStreamingAttention(q, k, v, 4)
	if err != nil {
		log.Fatal(err)
	}
	naive := transfusion.ReferenceAttention(q, k, v)
	fmt.Println(transfusion.MaxAbsDiff(streaming, naive) < 1e-9)
	// Output: true
}

// Comparing the five modelled systems; TransFusion is always the fastest.
func ExampleCompare() {
	results, err := transfusion.Compare("edge", "t5", 4096)
	if err != nil {
		log.Fatal(err)
	}
	fastest := results[0]
	for _, r := range results {
		if r.Cycles < fastest.Cycles {
			fastest = r
		}
	}
	fmt.Println(len(results), fastest.System)
	// Output: 5 transfusion
}

// Regenerating a paper artifact.
func ExampleRunExperiment() {
	out, err := transfusion.RunExperiment("table1", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(out) > 0)
	// Output: true
}
