// Package client is the Go client for the transfusiond HTTP API (POST
// /v1/plan, POST /v1/compare, GET /healthz, GET /readyz), built for an
// unreliable network and a server that degrades under load:
//
//   - retries with exponential backoff and full jitter, honouring the
//     server's Retry-After on 503 (transfusiond computes it from queue depth
//     and its plan-latency EWMA, so obeying it spreads a thundering herd);
//   - a circuit breaker that opens after consecutive 5xx responses and
//     half-opens a single probe after a cooldown, so a struggling server is
//     not hammered by a retry storm;
//   - optional request hedging for plan lookups: plans are idempotent and
//     cached server-side, so racing a second request after a quiet delay
//     trims tail latency without changing any outcome;
//   - typed errors: every non-2xx response surfaces as an *APIError carrying
//     the status, the server's message, and any Retry-After hint.
//
// Responses served below full fidelity (the server's overload degradation
// ladder or watchdog) are reported via PlanResponse.ServedDegraded, mirroring
// the Served-Degraded response header.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// PlanRequest is the POST /v1/plan body; field semantics follow
// transfusion.RunSpec.
type PlanRequest struct {
	Arch         string `json:"arch"`
	Model        string `json:"model"`
	SeqLen       int    `json:"seq_len"`
	System       string `json:"system"`
	Batch        int    `json:"batch,omitempty"`
	SearchBudget int    `json:"search_budget,omitempty"`
	Causal       bool   `json:"causal,omitempty"`
}

// PlanResponse is the POST /v1/plan reply.
type PlanResponse struct {
	Result transfusion.RunResult `json:"result"`
	Cached bool                  `json:"cached"`
	Key    string                `json:"key"`
	// Source names the tier that answered — "memory", "disk" (the server's
	// persistent plan store), or "search" — mirroring X-Plan-Source.
	Source    string  `json:"source"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// ServedDegraded mirrors the Served-Degraded response header: non-empty
	// when the server answered below full fidelity ("budget", "heuristic",
	// "watchdog", or "search"), empty for a full-fidelity answer.
	ServedDegraded string `json:"-"`
	// TraceID mirrors the X-Trace-Id response header: the server-side trace
	// that served this answer, quotable against the server's /debug/requests.
	TraceID string `json:"-"`
}

// CompareRequest is the POST /v1/compare body.
type CompareRequest struct {
	Arch         string `json:"arch"`
	Model        string `json:"model"`
	SeqLen       int    `json:"seq_len"`
	Batch        int    `json:"batch,omitempty"`
	SearchBudget int    `json:"search_budget,omitempty"`
}

// CompareResponse is the POST /v1/compare reply.
type CompareResponse struct {
	Results        []transfusion.RunResult `json:"results"`
	CachedResults  int                     `json:"cached_results"`
	ElapsedMS      float64                 `json:"elapsed_ms"`
	ServedDegraded string                  `json:"-"`
	// TraceID mirrors the X-Trace-Id response header; see PlanResponse.
	TraceID string `json:"-"`
}

// APIError is a non-2xx response from the server.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string (or a summary of an unparseable
	// body).
	Message string
	// RetryAfter is the server's Retry-After hint, 0 when absent.
	RetryAfter time.Duration
	// WarmHint is the server's nearest stored plan recipe, attached to peer
	// route refusals and cache-only misses (transfusiond's replica-aware
	// warm hints). A requester that falls back to a local search can seed it
	// into RunSpec.WarmHint so the search starts warm instead of cold. Nil
	// when the server had nothing nearby.
	WarmHint *transfusion.PlanSummary
}

// Error renders the status and message.
func (e *APIError) Error() string {
	return fmt.Sprintf("transfusiond: %d: %s", e.Status, e.Message)
}

// Temporary reports whether retrying the identical request can succeed:
// true for 5xx (overload, deadline, internal fault), false for 4xx (the
// request itself is wrong — 400/422 are deterministic outcomes).
func (e *APIError) Temporary() bool { return e.Status >= 500 }

// ErrCircuitOpen is returned without touching the network while the client's
// circuit breaker is open; match with errors.Is. Wait out the breaker
// cooldown (or fix the server) before retrying.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// Options tune the client; zero values take the defaults noted per field.
type Options struct {
	// HTTPClient overrides the transport (default: a client with a 90s
	// overall timeout; per-request contexts still apply).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try (default 3;
	// negative disables retries).
	MaxRetries int
	// BaseBackoff is the first retry's backoff ceiling (default 100ms);
	// subsequent attempts double it, with full jitter.
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff sleep (default 5s). A server
	// Retry-After above the cap is still honoured up to 60s.
	MaxBackoff time.Duration
	// BreakerThreshold is the consecutive-5xx count that opens the circuit
	// breaker (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before half-opening
	// a single probe request (default 10s).
	BreakerCooldown time.Duration
	// HedgeDelay, when positive, hedges plan lookups: if the first attempt
	// has not answered within the delay, a second identical request races it
	// and the first response wins. Plans are idempotent and coalesced
	// server-side, so hedging is safe; it is off by default.
	HedgeDelay time.Duration
	// Seed seeds the backoff jitter for reproducibility (0 seeds from the
	// clock).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: 90 * time.Second}
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	return o
}

// Client talks to one transfusiond instance. It is safe for concurrent use.
type Client struct {
	base string
	opts Options

	mu  sync.Mutex
	rng *rand.Rand
	brk breaker
}

// New builds a Client for the server at baseURL (e.g.
// "http://localhost:8080"); a trailing slash is trimmed.
func New(baseURL string, opts Options) *Client {
	opts = opts.withDefaults()
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		brk: breaker{
			threshold: opts.BreakerThreshold,
			cooldown:  opts.BreakerCooldown,
		},
	}
}

// breaker is the consecutive-5xx circuit breaker. Closed it passes every
// request; after threshold consecutive server-side failures it opens and
// fails fast for cooldown; then it half-opens exactly one probe — the probe's
// outcome closes or re-opens it.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	consec    int
	openedAt  time.Time
	probing   bool
}

// allow reports whether a request may go out now.
func (b *breaker) allow(now time.Time) bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consec < b.threshold {
		return true
	}
	if now.Sub(b.openedAt) < b.cooldown {
		return false
	}
	if b.probing {
		return false // one half-open probe at a time
	}
	b.probing = true
	return true
}

// record feeds one outcome back. serverFault marks 5xx responses and
// transport errors; 4xx responses and successes both count as the server
// answering coherently.
func (b *breaker) record(serverFault bool, now time.Time) {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if !serverFault {
		b.consec = 0
		return
	}
	b.consec++
	if b.consec >= b.threshold {
		b.openedAt = now
	}
}

// PeerPlanPath is transfusiond's internal replica-to-replica plan-fetch
// route. It shares the /v1/plan wire shapes, but the server refuses it while
// draining or degraded — a peer would rather search locally than serve a
// below-fidelity answer fetched across the cluster.
const PeerPlanPath = "/v1/peer/plan"

// PeerCachedPath is transfusiond's internal cache-only peer route: the server
// answers from its memory or disk tiers and never starts a search. Replicas
// use it for the one-hop previous-owner fetch after a ring change — cheap
// enough to try before a local search, and a miss (404) still carries the
// owner's nearest stored recipe as a warm hint.
const PeerCachedPath = "/v1/peer/cached"

// Plan evaluates one spec, retrying and (when configured) hedging. A trace
// span attached to ctx (obs.ContextWithSpan) gains a "client.plan" child
// covering every attempt, with events for retries, hedge launches, and
// breaker rejections, and the server's trace id as an attribute; the
// outbound traceparent header links the server-side trace to this one.
func (c *Client) Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	return c.plan(ctx, "/v1/plan", "client.plan", req)
}

// PeerPlan evaluates one spec through the server's internal peer-fetch route
// (PeerPlanPath) — the transport transfusiond replicas use to fetch a plan
// from the key's owner. Retries, hedging, and the breaker behave exactly as
// Plan's; a 503 (the owner is draining, overloaded, or would answer
// degraded) surfaces as a Temporary *APIError the caller falls back from.
func (c *Client) PeerPlan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	return c.plan(ctx, PeerPlanPath, "client.peer_plan", req)
}

// PeerCached asks the server for a plan from its caches only (PeerCachedPath);
// the server never searches on this route. A miss is a permanent 404 *APIError
// — no retries burn on it — whose WarmHint, when non-nil, carries the server's
// nearest stored recipe for seeding the caller's own search.
func (c *Client) PeerCached(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	return c.plan(ctx, PeerCachedPath, "client.peer_cached", req)
}

// plan is the shared body of Plan and PeerPlan: one idempotent plan-shaped
// POST to path under the retry/hedge/breaker stack.
func (c *Client) plan(ctx context.Context, path, spanName string, req PlanRequest) (*PlanResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding plan request: %w", err)
	}
	ctx, sp := obs.StartSpan(ctx, spanName)
	out, err := c.withRetries(ctx, func(ctx context.Context) (interface{}, *APIError, error) {
		return c.hedged(ctx, func(ctx context.Context) (interface{}, *APIError, error) {
			status, header, data, err := c.post(ctx, path, body)
			if err != nil {
				return nil, nil, err
			}
			resp, apiErr, err := decodePlanResponse(status, header.Get("Retry-After"), data)
			if resp != nil {
				resp.ServedDegraded = header.Get("Served-Degraded")
				resp.TraceID = header.Get("X-Trace-Id")
			}
			return asAny(resp), apiErr, err
		})
	})
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	resp := out.(*PlanResponse)
	if sp != nil {
		sp.SetAttr("server_trace", resp.TraceID)
		sp.SetAttr("source", resp.Source)
		sp.SetAttrBool("cached", resp.Cached)
		sp.End()
	}
	return resp, nil
}

// Compare evaluates all five systems on one workload, retrying on transient
// failures. Tracing mirrors Plan: a ctx span gains a "client.compare" child.
func (c *Client) Compare(ctx context.Context, req CompareRequest) (*CompareResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding compare request: %w", err)
	}
	ctx, sp := obs.StartSpan(ctx, "client.compare")
	out, err := c.withRetries(ctx, func(ctx context.Context) (interface{}, *APIError, error) {
		status, header, data, err := c.post(ctx, "/v1/compare", body)
		if err != nil {
			return nil, nil, err
		}
		resp, apiErr, err := decodeCompareResponse(status, header.Get("Retry-After"), data)
		if resp != nil {
			resp.ServedDegraded = header.Get("Served-Degraded")
			resp.TraceID = header.Get("X-Trace-Id")
		}
		return asAny(resp), apiErr, err
	})
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	resp := out.(*CompareResponse)
	if sp != nil {
		sp.SetAttr("server_trace", resp.TraceID)
		sp.End()
	}
	return resp, nil
}

// asAny keeps a typed nil pointer from becoming a non-nil interface.
func asAny[T any](p *T) interface{} {
	if p == nil {
		return nil
	}
	return p
}

// Healthy checks liveness (GET /healthz) — no retries, no breaker.
func (c *Client) Healthy(ctx context.Context) error { return c.check(ctx, "/healthz") }

// Ready checks readiness (GET /readyz): nil when the server is routable, an
// *APIError (503 while draining or while the server's evaluator breaker is
// open) otherwise. No retries, no breaker.
func (c *Client) Ready(ctx context.Context) error { return c.check(ctx, "/readyz") }

func (c *Client) check(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	setTraceparent(ctx, req)
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	return &APIError{Status: resp.StatusCode, Message: summarise(data)}
}

// attemptFn is one wire attempt: (result, API-level error, transport error).
type attemptFn func(ctx context.Context) (interface{}, *APIError, error)

// withRetries runs fn under the breaker and retry policy: transport errors
// and Temporary API errors back off (honouring Retry-After) and retry;
// permanent API errors and successes return immediately.
func (c *Client) withRetries(ctx context.Context, fn attemptFn) (interface{}, error) {
	sp := obs.SpanFromContext(ctx)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !c.brk.allow(time.Now()) {
			sp.Event("breaker.open")
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last error: %v)", ErrCircuitOpen, lastErr)
			}
			return nil, ErrCircuitOpen
		}
		out, apiErr, err := fn(ctx)
		switch {
		case err != nil:
			// Transport-level failure: the server never answered coherently.
			c.brk.record(true, time.Now())
			lastErr = err
		case apiErr != nil:
			c.brk.record(apiErr.Temporary(), time.Now())
			if !apiErr.Temporary() {
				return nil, apiErr
			}
			lastErr = apiErr
		default:
			c.brk.record(false, time.Now())
			return out, nil
		}
		if attempt >= c.opts.MaxRetries {
			return nil, lastErr
		}
		sp.Event("retry")
		if err := c.sleepBackoff(ctx, attempt, retryAfterOf(lastErr)); err != nil {
			return nil, err
		}
	}
}

// retryAfterOf extracts a server Retry-After hint from an error chain.
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// sleepBackoff waits before retry number attempt+1: exponential backoff with
// full jitter, floored by the server's Retry-After hint when one was given.
func (c *Client) sleepBackoff(ctx context.Context, attempt int, retryAfter time.Duration) error {
	ceil := c.opts.BaseBackoff << uint(attempt)
	if ceil > c.opts.MaxBackoff {
		ceil = c.opts.MaxBackoff
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.mu.Unlock()
	if retryAfter > d {
		// The server knows its queue better than our jitter does.
		d = retryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// hedged runs fn, racing a second identical attempt if the first has not
// answered within HedgeDelay; the first response (success or failure, as long
// as another attempt is not still in flight to fall back on) wins and the
// loser is cancelled. With hedging disabled it is just fn.
func (c *Client) hedged(ctx context.Context, fn attemptFn) (interface{}, *APIError, error) {
	if c.opts.HedgeDelay <= 0 {
		return fn(ctx)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type out struct {
		res    interface{}
		apiErr *APIError
		err    error
	}
	ch := make(chan out, 2)
	launch := func() { go func() { r, a, e := fn(hctx); ch <- out{r, a, e} }() }
	launch()
	launched, received := 1, 0
	hedge := time.NewTimer(c.opts.HedgeDelay)
	defer hedge.Stop()
	for {
		select {
		case o := <-ch:
			received++
			if (o.err == nil && o.apiErr == nil) || received == launched {
				return o.res, o.apiErr, o.err
			}
			// This attempt failed but its twin is still in flight: let the
			// twin decide the outcome.
		case <-hedge.C:
			obs.SpanFromContext(ctx).Event("hedge.launch")
			launch()
			launched = 2
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// maxResponseBytes bounds response bodies read into memory; plan and compare
// replies are a few KB.
const maxResponseBytes = 8 << 20

// setTraceparent stamps the outbound W3C trace-context header: a traced
// caller propagates its own trace id (the server adopts it, so one id follows
// the request across both processes); an untraced caller sends a fresh id per
// attempt so the server-side trace is still quotable from its X-Trace-Id.
func setTraceparent(ctx context.Context, req *http.Request) {
	if sp := obs.SpanFromContext(ctx); sp != nil {
		req.Header.Set("traceparent", obs.FormatTraceparent(sp.TraceID(), sp.SpanID()))
		return
	}
	req.Header.Set("traceparent", obs.NewTraceparent())
}

func (c *Client) post(ctx context.Context, path string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	setTraceparent(ctx, req)
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, data, nil
}

// errorBody is the server's JSON error shape. WarmHint rides only on peer
// route refusals and cache-only misses.
type errorBody struct {
	Error    string                   `json:"error"`
	Status   int                      `json:"status"`
	WarmHint *transfusion.PlanSummary `json:"warm_hint,omitempty"`
}

// decodePlanResponse turns one wire response into a PlanResponse or an
// *APIError. It must never panic and must tolerate arbitrary bodies — the
// server may be fronted by proxies that answer with HTML, truncated JSON, or
// nothing at all (FuzzClientDecode holds it to that).
func decodePlanResponse(status int, retryAfter string, body []byte) (*PlanResponse, *APIError, error) {
	if status == http.StatusOK {
		var pr PlanResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			return nil, nil, fmt.Errorf("client: undecodable 200 plan body: %w", err)
		}
		return &pr, nil, nil
	}
	return nil, apiErrorFrom(status, retryAfter, body), nil
}

// decodeCompareResponse is decodePlanResponse for /v1/compare.
func decodeCompareResponse(status int, retryAfter string, body []byte) (*CompareResponse, *APIError, error) {
	if status == http.StatusOK {
		var cr CompareResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			return nil, nil, fmt.Errorf("client: undecodable 200 compare body: %w", err)
		}
		return &cr, nil, nil
	}
	return nil, apiErrorFrom(status, retryAfter, body), nil
}

// apiErrorFrom builds the typed error for a non-200 response, tolerating
// non-JSON bodies and junk Retry-After values.
func apiErrorFrom(status int, retryAfter string, body []byte) *APIError {
	e := &APIError{Status: status}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != "" {
		e.Message = eb.Error
		e.WarmHint = eb.WarmHint
	} else {
		e.Message = summarise(body)
	}
	e.RetryAfter = parseRetryAfter(retryAfter)
	return e
}

// summarise renders a (possibly binary, possibly huge) body as a short
// printable message.
func summarise(body []byte) string {
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	if s == "" {
		return "(empty response body)"
	}
	return strconv.Quote(s)
}

// parseRetryAfter parses a Retry-After header in either RFC 9110 form —
// delta-seconds, or an HTTP-date (transfusiond sends delta-seconds, but the
// client also talks to it through proxies and load balancers that rewrite the
// header to a date) — clamped to [0, 5m]. Anything unparseable, negative, or
// a date already in the past is 0.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	const cap = 300 * time.Second
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return min(time.Duration(secs)*time.Second, cap)
	}
	// http.ParseTime accepts the three date formats the RFC admits
	// (IMF-fixdate, RFC 850, ANSI C asctime).
	when, err := http.ParseTime(v)
	if err != nil {
		return 0
	}
	d := time.Until(when)
	if d < 0 {
		return 0
	}
	return min(d, cap)
}
