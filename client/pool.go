package client

import (
	"sort"
	"strings"
	"sync"
)

// Pool hands out one Client per base URL, built lazily from a shared Options
// template. Its reason to exist is failure isolation: the circuit breaker and
// backoff jitter stream live on the Client, so callers that talk to N servers
// through one Pool get N independent breakers — one slow or dead peer opens
// only its own breaker, and requests to the healthy peers keep flowing. (A
// single Client reused across endpoints would conflate them: five 5xx
// responses from one peer would fail-fast requests to all of them.)
//
// transfusiond's cluster tier is the canonical user: one Pool per daemon,
// one Client per peer replica.
type Pool struct {
	opts Options

	mu      sync.Mutex
	clients map[string]*Client
}

// NewPool builds a Pool whose Clients share opts. Options.Seed, when set,
// stays reproducible per endpoint: each Client's jitter stream is derived
// from the pool seed and its base URL, so two pools built with the same seed
// and endpoints behave identically without the endpoints sharing a stream.
func NewPool(opts Options) *Pool {
	return &Pool{opts: opts.withDefaults(), clients: make(map[string]*Client)}
}

// For returns the Client for baseURL, creating it on first use. The same
// (trailing-slash-normalised) URL always returns the same Client, so breaker
// state accumulates per endpoint across calls.
func (p *Pool) For(baseURL string) *Client {
	key := strings.TrimRight(baseURL, "/")
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.clients[key]; ok {
		return c
	}
	opts := p.opts
	// Derive a per-endpoint jitter seed: deterministic given the pool seed,
	// distinct per endpoint (splitmix64 of the FNV-1a of the URL).
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	seed := uint64(opts.Seed) ^ h
	if seed == 0 {
		seed = h | 1
	}
	opts.Seed = int64(seed)
	c := New(key, opts)
	p.clients[key] = c
	return c
}

// Prune drops the Clients for every endpoint not in keep (same
// trailing-slash normalisation as For), releasing their breaker and jitter
// state, and returns how many were dropped. A long-lived pool under dynamic
// cluster membership calls this on every reconfiguration so departed
// replicas don't accumulate per-endpoint state forever; an endpoint that
// later rejoins gets a fresh Client — and a closed breaker — from For.
func (p *Pool) Prune(keep []string) int {
	keepSet := make(map[string]bool, len(keep))
	for _, u := range keep {
		keepSet[strings.TrimRight(u, "/")] = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	dropped := 0
	for k := range p.clients {
		if !keepSet[k] {
			delete(p.clients, k)
			dropped++
		}
	}
	return dropped
}

// Endpoints lists the base URLs the pool has built Clients for, sorted.
func (p *Pool) Endpoints() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.clients))
	for k := range p.clients {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
