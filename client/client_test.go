// These tests live in an external package (with a dot-import for brevity)
// because they exercise the client against a real serve.Server — and serve
// now imports client for its cluster peer tier, which would be an import
// cycle from an in-package test.
package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	. "github.com/fusedmindlab/transfusion/client"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/serve"
)

// fastOpts keeps test retries quick and deterministic.
func fastOpts() Options {
	return Options{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        1,
	}
}

// The client round-trips against the real serving layer: plan, compare, and
// both health endpoints.
func TestClientAgainstRealServer(t *testing.T) {
	reg := obs.NewRegistry()
	s := serve.New(serve.Config{Parallelism: 1}, reg, context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	ctx := context.Background()
	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	pr, err := c.Plan(ctx, PlanRequest{Arch: "edge", Model: "bert", SeqLen: 1024, System: "unfused"})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if pr.Result.System != "unfused" || pr.Result.Cycles <= 0 {
		t.Fatalf("implausible plan result: %+v", pr.Result)
	}
	if pr.ServedDegraded != "" {
		t.Fatalf("unloaded server served degraded: %q", pr.ServedDegraded)
	}
	again, err := c.Plan(ctx, PlanRequest{Arch: "edge", Model: "bert", SeqLen: 1024, System: "unfused"})
	if err != nil {
		t.Fatalf("Plan again: %v", err)
	}
	if !again.Cached || again.Result.Cycles != pr.Result.Cycles {
		t.Fatalf("repeat plan not served from cache: %+v", again)
	}
	cr, err := c.Compare(ctx, CompareRequest{Arch: "edge", Model: "bert", SeqLen: 1024, SearchBudget: 4})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(cr.Results) != 5 {
		t.Fatalf("compare results = %d, want 5", len(cr.Results))
	}
}

// A 4xx is a deterministic outcome: surfaced as a typed permanent APIError,
// never retried.
func TestClientDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad spec","status":400}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	_, err := c.Plan(context.Background(), PlanRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *APIError with 400", err)
	}
	if apiErr.Temporary() {
		t.Fatal("400 reported Temporary")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retries on 4xx)", got)
	}
}

// Transient 5xx responses are retried with backoff until the server recovers.
func TestClientRetriesTransientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"overloaded","status":503}`)) //nolint:errcheck
			return
		}
		w.Write([]byte(`{"result":{"System":"unfused","Cycles":1},"cached":false,"key":"k"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	pr, err := c.Plan(context.Background(), PlanRequest{})
	if err != nil {
		t.Fatalf("Plan after transient 503s: %v", err)
	}
	if pr.Result.Cycles != 1 {
		t.Fatalf("unexpected result: %+v", pr.Result)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 503s then success)", got)
	}
}

// The server's Retry-After floor is honoured: with a 1-second hint the retry
// cannot arrive earlier.
func TestClientHonoursRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstAt, secondAt atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstAt.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			secondAt.Store(time.Now().UnixNano())
			w.Write([]byte(`{"result":{},"cached":false,"key":"k"}`)) //nolint:errcheck
		}
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	if _, err := c.Plan(context.Background(), PlanRequest{}); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if gap := time.Duration(secondAt.Load() - firstAt.Load()); gap < time.Second {
		t.Fatalf("retry arrived %v after the 503, before the 1s Retry-After", gap)
	}
}

// After threshold consecutive 5xx the breaker opens and fails fast without
// touching the network; after the cooldown a half-open probe closes it again.
func TestClientCircuitBreaker(t *testing.T) {
	var calls atomic.Int64
	var failing atomic.Bool
	failing.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"boom","status":500}`)) //nolint:errcheck
			return
		}
		w.Write([]byte(`{"result":{},"cached":false,"key":"k"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	opts := fastOpts()
	opts.MaxRetries = 2 // 3 attempts per call
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = 50 * time.Millisecond
	c := New(ts.URL, opts)
	ctx := context.Background()

	// First call: 3 attempts, all 500 — trips the breaker exactly at the
	// threshold.
	if _, err := c.Plan(ctx, PlanRequest{}); err == nil {
		t.Fatal("failing server produced no error")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	// Second call: breaker is open — fails fast, no network traffic.
	if _, err := c.Plan(ctx, PlanRequest{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("open breaker let a request through (%d calls)", got)
	}
	// After the cooldown the half-open probe goes through; the server has
	// recovered, so the probe succeeds and the breaker closes.
	failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Plan(ctx, PlanRequest{}); err != nil {
		t.Fatalf("post-cooldown probe failed: %v", err)
	}
	if _, err := c.Plan(ctx, PlanRequest{}); err != nil {
		t.Fatalf("closed breaker rejected a request: %v", err)
	}
}

// A hedged plan lookup returns as soon as either attempt answers: a stalled
// first request does not hold the response hostage.
func TestClientHedgingTrimsTailLatency(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First attempt stalls until the test ends.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		w.Write([]byte(`{"result":{},"cached":true,"key":"k"}`)) //nolint:errcheck
	}))
	defer ts.Close()
	defer close(release)

	opts := fastOpts()
	opts.HedgeDelay = 20 * time.Millisecond
	c := New(ts.URL, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	pr, err := c.Plan(ctx, PlanRequest{})
	if err != nil {
		t.Fatalf("hedged Plan: %v", err)
	}
	if !pr.Cached {
		t.Fatalf("unexpected response: %+v", pr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged response took %v; the stalled first attempt won", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (primary + hedge)", got)
	}
}

// End to end: a 503 carrying a date-form Retry-After holds the retry back.
func TestClientHonoursHTTPDateRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstAt, secondAt atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstAt.Store(time.Now().UnixNano())
			// Truncate before adding: HTTP-dates drop sub-second precision,
			// so "now + 1s" could land mere milliseconds in the future when
			// now is late in its second. Truncating first guarantees the
			// date is 1-2s out and the asserted gap below always holds.
			w.Header().Set("Retry-After", time.Now().Truncate(time.Second).Add(2*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			secondAt.Store(time.Now().UnixNano())
			w.Write([]byte(`{"result":{},"cached":false,"key":"k"}`)) //nolint:errcheck
		}
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	if _, err := c.Plan(context.Background(), PlanRequest{}); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	// HTTP-dates have one-second resolution, so the bound is conservative:
	// the retry must not arrive essentially immediately (the pre-fix
	// fall-through to the millisecond-scale default backoff).
	if gap := time.Duration(secondAt.Load() - firstAt.Load()); gap < 100*time.Millisecond {
		t.Fatalf("retry arrived %v after the 503 — the date-form Retry-After was ignored", gap)
	}
}

// A traced caller's trace id must ride the outbound traceparent header (so
// the server adopts it), the server's X-Trace-Id must land in the response
// struct, and retries must show up as events on the "client.plan" span.
func TestClientTracePropagation(t *testing.T) {
	var gotTraceparent atomic.Value
	var fails atomic.Int32
	fails.Store(1) // first attempt 500s, the retry succeeds
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTraceparent.Store(r.Header.Get("traceparent"))
		if fails.Add(-1) >= 0 {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"transient","status":500}`))
			return
		}
		w.Header().Set("X-Trace-Id", "5e77e76a5e77e76a5e77e76a5e77e76a")
		w.Write([]byte(`{"result":{"Cycles":42},"cached":false,"key":"k","source":"search"}`))
	}))
	defer ts.Close()

	trc := obs.NewTracer(obs.TracerConfig{})
	trace, root := trc.StartRequest("client-test", "")
	ctx := obs.ContextWithSpan(context.Background(), root)

	pr, err := New(ts.URL, fastOpts()).Plan(ctx, PlanRequest{Arch: "edge", Model: "bert", SeqLen: 512, System: "unfused"})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if pr.TraceID != "5e77e76a5e77e76a5e77e76a5e77e76a" {
		t.Fatalf("PlanResponse.TraceID = %q, want the server's X-Trace-Id", pr.TraceID)
	}
	tid, _, ok := obs.ParseTraceparent(gotTraceparent.Load().(string))
	if !ok || tid != root.TraceID() {
		t.Fatalf("outbound traceparent %q does not carry caller trace %s", gotTraceparent.Load(), root.TraceID())
	}

	root.End()
	trc.Finish(trace)
	exp, ok := trc.Export(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not exportable", root.TraceID())
	}
	var plan *obs.SpanExport
	var walk func(spans []*obs.SpanExport)
	walk = func(spans []*obs.SpanExport) {
		for _, s := range spans {
			if s.Name == "client.plan" {
				plan = s
			}
			walk(s.Children)
		}
	}
	walk(exp.Spans)
	if plan == nil {
		t.Fatal("no client.plan span in exported trace")
	}
	retried := false
	for _, ev := range plan.Events {
		if ev.Name == "retry" {
			retried = true
		}
	}
	if !retried {
		t.Fatal("client.plan span has no retry event despite a 500 first attempt")
	}
	attrs := map[string]string{}
	for _, a := range plan.Attrs {
		attrs[a.K] = a.V
	}
	if attrs["server_trace"] != pr.TraceID || attrs["source"] != "search" {
		t.Fatalf("client.plan attrs = %v, want server_trace and source", attrs)
	}
}

// An untraced caller still stamps a fresh, valid traceparent on the wire so
// the server-side trace exists and is quotable.
func TestClientFreshTraceparentWhenUntraced(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("traceparent"))
		w.Write([]byte(`{"result":{},"cached":false,"key":"k","source":"memory"}`))
	}))
	defer ts.Close()
	if _, err := New(ts.URL, fastOpts()).Plan(context.Background(), PlanRequest{Arch: "edge", Model: "bert", SeqLen: 512, System: "unfused"}); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if _, _, ok := obs.ParseTraceparent(got.Load().(string)); !ok {
		t.Fatalf("untraced client sent invalid traceparent %q", got.Load())
	}
}
