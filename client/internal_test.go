// In-package unit tests for unexported helpers. Anything that needs a real
// serve.Server lives in client_test.go (external package client_test) to
// avoid an import cycle: serve imports client for its cluster peer tier.
package client

import (
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{" 2 ", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"nonsense", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, // valid HTTP-date, but in the past
		{"Wed, 21 Oct 2015 07:28:00", 0},     // date missing its zone: unparseable
		{"99999", 300 * time.Second},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// Regression: a proxy rewriting delta-seconds into an HTTP-date must still
// produce a real backoff, not fall through to 0 (the pre-fix behaviour).
func TestParseRetryAfterHTTPDate(t *testing.T) {
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	got := parseRetryAfter(future)
	if got < 8*time.Second || got > 10*time.Second {
		t.Fatalf("parseRetryAfter(%q) = %v, want ~10s", future, got)
	}
	// All three RFC 9110 date formats parse.
	when := time.Now().Add(30 * time.Second).UTC()
	for _, layout := range []string{http.TimeFormat, "Monday, 02-Jan-06 15:04:05 MST", time.ANSIC} {
		v := when.Format(layout)
		if got := parseRetryAfter(v); got < 25*time.Second || got > 30*time.Second {
			t.Errorf("parseRetryAfter(%q) = %v, want ~30s", v, got)
		}
	}
	// A far-future date clamps to the same 5-minute cap as delta-seconds.
	far := time.Now().Add(24 * time.Hour).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(far); got != 300*time.Second {
		t.Fatalf("parseRetryAfter(far future) = %v, want the 5m cap", got)
	}
}

func TestDecodePlanResponse(t *testing.T) {
	pr, apiErr, err := decodePlanResponse(200, "", []byte(`{"result":{"Cycles":42},"cached":true,"key":"k"}`))
	if err != nil || apiErr != nil || pr == nil || pr.Result.Cycles != 42 || !pr.Cached {
		t.Fatalf("good 200 decode = %+v, %v, %v", pr, apiErr, err)
	}
	if _, _, err := decodePlanResponse(200, "", []byte(`<html>gateway error</html>`)); err == nil {
		t.Fatal("undecodable 200 body produced no error")
	}
	_, apiErr, err = decodePlanResponse(503, "7", []byte(`{"error":"overloaded","status":503}`))
	if err != nil || apiErr == nil || apiErr.Status != 503 || apiErr.RetryAfter != 7*time.Second || apiErr.Message != "overloaded" {
		t.Fatalf("503 decode = %+v, %v", apiErr, err)
	}
	_, apiErr, _ = decodePlanResponse(502, "", []byte("Bad Gateway"))
	if apiErr == nil || apiErr.Status != 502 || apiErr.Message == "" {
		t.Fatalf("non-JSON 502 decode = %+v", apiErr)
	}
	if !apiErr.Temporary() {
		t.Fatal("502 reported permanent")
	}
}
