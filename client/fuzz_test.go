package client

import (
	"testing"
)

// FuzzClientDecode holds the response decoders to their contract: whatever
// bytes a proxy or a half-dead server answers with, decoding never panics,
// never returns a response and an error together, and always produces a
// typed *APIError for non-200 statuses.
func FuzzClientDecode(f *testing.F) {
	f.Add(200, "", []byte(`{"result":{"Cycles":1},"cached":false,"key":"k"}`))
	f.Add(200, "", []byte(`{"results":[{}],"cached_results":1}`))
	f.Add(200, "", []byte(`<html>gateway error</html>`))
	f.Add(200, "", []byte(``))
	f.Add(400, "", []byte(`{"error":"bad spec","status":400}`))
	f.Add(503, "7", []byte(`{"error":"overloaded","status":503}`))
	f.Add(503, "Wed, 21 Oct 2015 07:28:00 GMT", []byte(`Bad Gateway`))
	f.Add(500, "-1", []byte{0xff, 0xfe, 0x00})
	f.Add(504, "99999999999999999999", []byte(`{"error":`))
	f.Fuzz(func(t *testing.T, status int, retryAfter string, body []byte) {
		pr, planErr, err := decodePlanResponse(status, retryAfter, body)
		checkDecode(t, status, pr != nil, planErr, err)
		cr, cmpErr, err := decodeCompareResponse(status, retryAfter, body)
		checkDecode(t, status, cr != nil, cmpErr, err)
	})
}

func checkDecode(t *testing.T, status int, gotResp bool, apiErr *APIError, err error) {
	t.Helper()
	if status == 200 {
		if apiErr != nil {
			t.Fatalf("200 produced an APIError: %v", apiErr)
		}
		if gotResp == (err != nil) {
			t.Fatalf("200 decode: resp=%t err=%v — want exactly one", gotResp, err)
		}
		return
	}
	if gotResp || err != nil {
		t.Fatalf("non-200 decode: resp=%t err=%v — want neither", gotResp, err)
	}
	if apiErr == nil {
		t.Fatalf("status %d produced no APIError", status)
	}
	if apiErr.Status != status {
		t.Fatalf("APIError.Status = %d, want %d", apiErr.Status, status)
	}
	if apiErr.Message == "" {
		t.Fatal("APIError with empty message")
	}
	if apiErr.RetryAfter < 0 || apiErr.RetryAfter > 300e9 {
		t.Fatalf("RetryAfter %v outside [0, 5m]", apiErr.RetryAfter)
	}
}
