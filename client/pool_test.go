// External package for the same reason as client_test.go: these tests stand
// in for the cluster tier, which reaches client through serve's import graph.
package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	. "github.com/fusedmindlab/transfusion/client"
)

// Regression for the shared-breaker hazard: before Pool, reusing one Client
// for N peers conflated their breaker state — consecutive 5xx from one dead
// peer would fail-fast requests to every healthy peer. A Pool must keep the
// breaker per endpoint: A's open circuit never blocks B.
func TestPoolIsolatesBreakerPerEndpoint(t *testing.T) {
	var deadCalls, okCalls atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadCalls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer dead.Close()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		okCalls.Add(1)
		w.Write([]byte(`{"result":{},"cached":false,"key":"k"}`)) //nolint:errcheck
	}))
	defer ok.Close()

	pool := NewPool(Options{
		MaxRetries:       2,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute, // long enough to stay open for the test
		Seed:             42,
	})

	ctx := context.Background()
	// Trip the dead peer's breaker: one call's 3 attempts all 500.
	if _, err := pool.For(dead.URL).Plan(ctx, PlanRequest{}); err == nil {
		t.Fatal("dead peer returned success")
	}
	if _, err := pool.For(dead.URL).Plan(ctx, PlanRequest{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second call to dead peer: err = %v, want ErrCircuitOpen", err)
	}
	tripped := deadCalls.Load()

	// The healthy peer must be unaffected — its breaker is its own.
	for i := 0; i < 5; i++ {
		if _, err := pool.For(ok.URL).Plan(ctx, PlanRequest{}); err != nil {
			t.Fatalf("healthy peer failed after sibling's breaker opened: %v", err)
		}
	}
	if okCalls.Load() != 5 {
		t.Fatalf("healthy peer saw %d calls, want 5", okCalls.Load())
	}
	// And the open breaker really is failing fast: no further network calls
	// reached the dead peer.
	if _, err := pool.For(dead.URL).Plan(ctx, PlanRequest{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("dead peer breaker closed early: %v", err)
	}
	if got := deadCalls.Load(); got != tripped {
		t.Fatalf("open breaker let %d extra calls through", got-tripped)
	}
}

// The same normalised URL always resolves to the same Client (breaker state
// must accumulate across calls), and trailing slashes collapse.
func TestPoolReusesClientPerURL(t *testing.T) {
	pool := NewPool(Options{})
	a := pool.For("http://peer-a:8080")
	if pool.For("http://peer-a:8080") != a || pool.For("http://peer-a:8080/") != a {
		t.Fatal("same endpoint produced distinct Clients")
	}
	if pool.For("http://peer-b:8080") == a {
		t.Fatal("distinct endpoints shared a Client")
	}
	got := pool.Endpoints()
	if len(got) != 2 || got[0] != "http://peer-a:8080" || got[1] != "http://peer-b:8080" {
		t.Fatalf("Endpoints() = %v", got)
	}
}

// Prune must drop exactly the endpoints that left the member set — their
// breaker state with them, so a rejoining endpoint starts with a closed
// breaker — and leave survivors' Clients (and accumulated state) untouched.
func TestPoolPruneDropsDepartedEndpoints(t *testing.T) {
	pool := NewPool(Options{})
	a := pool.For("http://peer-a:8080")
	b := pool.For("http://peer-b:8080")
	pool.For("http://peer-c:8080")

	// Keep-list normalisation matches For's: a trailing slash is the same
	// endpoint.
	if dropped := pool.Prune([]string{"http://peer-a:8080/", "http://peer-b:8080"}); dropped != 1 {
		t.Fatalf("Prune dropped %d, want 1", dropped)
	}
	got := pool.Endpoints()
	if len(got) != 2 || got[0] != "http://peer-a:8080" || got[1] != "http://peer-b:8080" {
		t.Fatalf("Endpoints() after prune = %v", got)
	}
	if pool.For("http://peer-a:8080") != a || pool.For("http://peer-b:8080") != b {
		t.Fatal("prune rebuilt a surviving endpoint's Client")
	}
	// The departed endpoint gets a fresh Client if it ever rejoins.
	if pool.For("http://peer-c:8080") == nil {
		t.Fatal("rejoining endpoint got no Client")
	}
	if dropped := pool.Prune(nil); dropped != 3 {
		t.Fatalf("Prune(nil) dropped %d, want 3", dropped)
	}
	if len(pool.Endpoints()) != 0 {
		t.Fatalf("Endpoints() after full prune = %v", pool.Endpoints())
	}
}
